"""ShardingVerifier: static proofs of the resharding geometry (rules SH4xx).

The 3D-HybridEngine's correctness rests on interval arithmetic over the
(layer, tensor) unit square (§5.3, Eq. 1–2): training shards must partition
the parameter space, and the train→generation gather plan must cover every
rank's generation shard from exactly the owning ranks.  This pass proves
both properties by an exhaustive *boundary-refinement sweep*: collect every
rectangle boundary, cut the unit square into cells no shard straddles, and
count owners per cell.  The sweep is deliberately independent of the
closed-form fractions in :mod:`repro.parallel.sharding`
(``shard_overlap_fraction`` / ``redundant_fraction`` /
``peak_param_fraction``) so the two derivations cross-check each other.

All arithmetic is exact (:class:`fractions.Fraction`); there are no
tolerances and therefore no false positives from rounding.

Rules:

* ``SH401`` — a DP replica's training shards do not partition the unit
  square (a gap or double-ownership).
* ``SH402`` — a transition plan leaves part of a rank's generation shard
  uncovered, or ships a tile its source rank does not own.
* ``SH403`` — a transition plan gathers redundant bytes under the
  zero-redundancy grouping, or the closed-form overlap/redundancy algebra
  disagrees with the interval sweep.
* ``SH404`` — a collective group family is not a true partition of the
  pool's ranks.
* ``SH405`` — a ZeRO/FSDP config is inconsistent with the device-mapping
  memory projection (wrong DP degree, state that cannot fit, or a drifted
  FSDP↔ZeRO mapping).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.report import ERROR, AnalysisReport
from repro.comm.groups import ProcessGroup, partition_problems
from repro.parallel.fsdp import (
    FsdpConfig,
    fsdp_grad_sync_volume,
    fsdp_memory_per_rank,
    fsdp_param_gather_volume,
)
from repro.parallel.sharding import (
    ShardRange,
    WeightShard,
    generation_shard,
    peak_param_fraction,
    redundant_fraction,
    shard_overlap_fraction,
    training_shard,
)
from repro.parallel.topology import GenGroupingMode, GenTopology, ParallelTopology
from repro.parallel.zero import (
    ZeroConfig,
    ZeroStage,
    zero_grad_sync_volume,
    zero_memory_per_rank,
    zero_param_gather_volume,
)

UNIT_SQUARE = WeightShard(
    layers=ShardRange(Fraction(0), Fraction(1)),
    tensor=ShardRange(Fraction(0), Fraction(1)),
)


# -- interval sweep --------------------------------------------------------------------


def sweep_cells(
    shards: Sequence[WeightShard],
) -> Iterator[Tuple[WeightShard, List[int]]]:
    """Cut the unit square along every shard boundary; yield (cell, owners).

    The refinement guarantees no cell straddles a shard edge, so per-cell
    ownership is a plain containment test and the per-cell owner counts are
    exact — the sweep enumerates the whole square, including cells no shard
    covers.
    """
    layer_cuts = sorted(
        {Fraction(0), Fraction(1)}
        | {s.layers.start for s in shards}
        | {s.layers.stop for s in shards}
    )
    tensor_cuts = sorted(
        {Fraction(0), Fraction(1)}
        | {s.tensor.start for s in shards}
        | {s.tensor.stop for s in shards}
    )
    for l0, l1 in zip(layer_cuts, layer_cuts[1:]):
        for t0, t1 in zip(tensor_cuts, tensor_cuts[1:]):
            cell = WeightShard(ShardRange(l0, l1), ShardRange(t0, t1))
            owners = [i for i, s in enumerate(shards) if s.contains(cell)]
            yield cell, owners


def sweep_overlap_fraction(a: WeightShard, b: WeightShard) -> Fraction:
    """Area shared by two rectangles, computed by the sweep (not min/max)."""
    total = Fraction(0)
    for cell, owners in sweep_cells([a, b]):
        if len(owners) == 2:
            total += cell.fraction
    return total


def sweep_difference_fraction(a: WeightShard, b: WeightShard) -> Fraction:
    """Area of ``a`` not covered by ``b``, by the sweep."""
    total = Fraction(0)
    for cell, owners in sweep_cells([a, b]):
        if owners == [0]:
            total += cell.fraction
    return total


def sweep_union_fraction(shards: Sequence[WeightShard]) -> Fraction:
    """Area covered by at least one rectangle, by the sweep."""
    total = Fraction(0)
    for cell, owners in sweep_cells(list(shards)):
        if owners:
            total += cell.fraction
    return total


# -- the verifier ----------------------------------------------------------------------


class ShardingVerifier:
    """Prove (or refute) a topology pair's resharding plan rank by rank."""

    def verify_topology(
        self,
        topology: ParallelTopology,
        report: Optional[AnalysisReport] = None,
        shards: Optional[Dict[int, WeightShard]] = None,
    ) -> AnalysisReport:
        """SH401 + SH404 over a training topology.

        ``shards`` overrides the per-rank training shards (tests seed broken
        ownership maps through it); by default they are derived from the
        topology, per Megatron's ``(pp, tp)`` rectangles.
        """
        if report is None:
            report = AnalysisReport("sharding")
        if shards is None:
            shards = {
                r: training_shard(topology, r) for r in topology.global_ranks
            }
        cfg = topology.config
        for d in range(cfg.dp):
            replica_ranks = [
                topology.global_rank_at(p, t, d)
                for p in range(cfg.pp)
                for t in range(cfg.tp)
            ]
            self._check_replica_partition(
                topology.name, d, replica_ranks, shards, report
            )
            report.note_checked("replicas")
        for family, groups in (
            ("tp", topology.all_tp_groups()),
            ("pp", topology.all_pp_groups()),
            ("dp", topology.all_dp_groups()),
            ("mp", _dedupe(topology.mp_group(r) for r in topology.global_ranks)),
        ):
            self.verify_group_family(
                f"{topology.name}.{family}", groups, topology.global_ranks, report
            )
        return report

    def _check_replica_partition(
        self,
        name: str,
        replica: int,
        ranks: List[int],
        shards: Dict[int, WeightShard],
        report: AnalysisReport,
    ) -> None:
        cover = [shards[r] for r in ranks]
        gap = Fraction(0)
        doubled = Fraction(0)
        example = None
        for cell, owners in sweep_cells(cover):
            report.note_checked("cells")
            if not owners:
                gap += cell.fraction
                example = example or ("no rank owns", cell)
            elif len(owners) > 1:
                doubled += cell.fraction
                owner_ranks = [ranks[i] for i in owners]
                example = example or (f"ranks {owner_ranks} all own", cell)
        if gap or doubled:
            what, cell = example
            report.add(
                "SH401",
                ERROR,
                f"training shards of DP replica {replica} do not partition "
                f"the parameter space: gap fraction {gap}, double-owned "
                f"fraction {doubled}; e.g. {what} layers "
                f"[{cell.layers.start},{cell.layers.stop}) x tensor "
                f"[{cell.tensor.start},{cell.tensor.stop})",
                location=f"{name}.replica[{replica}]",
                hint="each (pp, tp) coordinate must own exactly its "
                "ShardRange.of_partition rectangle",
            )

    def verify_transition(
        self,
        gen: GenTopology,
        plan=None,
        report: Optional[AnalysisReport] = None,
    ) -> AnalysisReport:
        """SH402/SH403 over a transition plan + SH404 over the gen groups.

        ``plan`` is a :class:`repro.hybrid_engine.engine.TransitionPlan`;
        when omitted it is derived from the topology pair (the plan the
        engine itself would execute).
        """
        if report is None:
            report = AnalysisReport("sharding")
        if plan is None:
            from repro.hybrid_engine.engine import plan_transition

            plan = plan_transition(gen)
        train = gen.train
        owner_shards = {r: training_shard(train, r) for r in train.global_ranks}
        for rank in train.global_ranks:
            rank_plan = plan.by_rank.get(rank)
            if rank_plan is None:
                report.add(
                    "SH402",
                    ERROR,
                    f"transition plan has no entry for rank {rank}",
                    location=f"{train.name}.transition[{rank}]",
                    hint="plan_transition must cover every rank of the pool",
                )
                continue
            self._check_rank_plan(
                train.name, rank_plan, plan.mode, owner_shards, report
            )
            self._cross_check_closed_form(train.name, gen, rank, report)
            report.note_checked("ranks")
        for family, groups in (
            (
                "micro_dp",
                gen.all_micro_dp_groups(),
            ),
            ("gen_tp", _dedupe(gen.gen_tp_group(r) for r in train.global_ranks)),
            ("gen_pp", _dedupe(gen.gen_pp_group(r) for r in train.global_ranks)),
        ):
            self.verify_group_family(
                f"{train.name}.{family}", groups, train.global_ranks, report
            )
        return report

    def _check_rank_plan(
        self,
        name: str,
        rank_plan,
        mode: GenGroupingMode,
        owner_shards: Dict[int, WeightShard],
        report: AnalysisReport,
    ) -> None:
        problems: List[str] = []
        cover = [rank_plan.reused] + [tile.shard for tile in rank_plan.tiles]
        # provenance: a tile must come out of its source rank's resting shard
        for tile in rank_plan.tiles:
            report.note_checked("tiles")
            owner = owner_shards.get(tile.source_rank)
            if owner is None or not owner.contains(tile.shard):
                problems.append(
                    f"tile from rank {tile.source_rank} lies outside that "
                    "rank's training shard"
                )
        # coverage + redundancy in one sweep over cover ∪ {target}
        gap = Fraction(0)
        gathered = Fraction(0)  # total area-weighted multiplicity of the cover
        useful = Fraction(0)  # covered area inside the target
        for cell, owners in sweep_cells(cover + [rank_plan.target]):
            report.note_checked("cells")
            in_target = rank_plan.target.contains(cell)
            n_cover = len([i for i in owners if i < len(cover)])
            if in_target and n_cover == 0:
                gap += cell.fraction
            gathered += n_cover * cell.fraction
            if in_target and n_cover:
                useful += cell.fraction
        if gap:
            problems.append(
                f"generation shard has an uncovered gap of fraction {gap}"
            )
        excess = gathered - useful
        if mode is GenGroupingMode.HYBRIDFLOW and excess > 0 and not gap:
            report.add(
                "SH403",
                ERROR,
                f"zero-redundancy plan gathers redundant fraction {excess} "
                f"on rank {rank_plan.rank} (bytes held or received beyond "
                "its generation shard)",
                location=f"{name}.transition[{rank_plan.rank}]",
                hint="each micro-DP peer's training shard must appear "
                "exactly once and lie inside the target (§5.3, Eq. 2)",
            )
        if problems:
            report.add(
                "SH402",
                ERROR,
                f"rank {rank_plan.rank}: " + "; ".join(problems),
                location=f"{name}.transition[{rank_plan.rank}]",
                hint="the gather group must supply every missing tile of "
                "the generation shard from its owning ranks (§5.3, Eq. 1)",
            )

    def _cross_check_closed_form(
        self, name: str, gen: GenTopology, rank: int, report: AnalysisReport
    ) -> None:
        """Closed-form §5.3 fractions must match the independent sweep."""
        train_sh = training_shard(gen.train, rank)
        gen_sh = generation_shard(gen, rank)
        overlap = sweep_overlap_fraction(train_sh, gen_sh)
        redundant = sweep_difference_fraction(train_sh, gen_sh)
        peak = gen_sh.fraction + redundant
        mismatches = []
        if overlap != shard_overlap_fraction(gen, rank):
            mismatches.append(
                f"overlap: sweep {overlap} vs closed form "
                f"{shard_overlap_fraction(gen, rank)}"
            )
        if redundant != redundant_fraction(gen, rank):
            mismatches.append(
                f"redundancy: sweep {redundant} vs closed form "
                f"{redundant_fraction(gen, rank)}"
            )
        if peak != peak_param_fraction(gen, rank):
            mismatches.append(
                f"peak: sweep {peak} vs closed form "
                f"{peak_param_fraction(gen, rank)}"
            )
        if gen.mode is GenGroupingMode.HYBRIDFLOW and redundant != 0:
            mismatches.append(
                f"HYBRIDFLOW grouping must be redundancy-free, got {redundant}"
            )
        if mismatches:
            report.add(
                "SH403",
                ERROR,
                f"rank {rank}: " + "; ".join(mismatches),
                location=f"{name}.geometry[{rank}]",
                hint="repro/parallel/sharding.py closed forms and the "
                "interval sweep must agree exactly (§5.3, Eq. 1–2)",
            )
        report.note_checked("geometry_cross_checks")

    def verify_group_family(
        self,
        family: str,
        groups: Sequence[ProcessGroup],
        universe: Sequence[int],
        report: Optional[AnalysisReport] = None,
    ) -> AnalysisReport:
        """SH404: a collective group family must partition the pool's ranks."""
        if report is None:
            report = AnalysisReport("sharding")
        report.note_checked("group_families")
        problems = partition_problems(groups, universe)
        if problems:
            report.add(
                "SH404",
                ERROR,
                f"group family {family!r} is not a partition of the pool: "
                + "; ".join(problems[:3])
                + ("" if len(problems) <= 3 else f" (+{len(problems) - 3} more)"),
                location=family,
                hint="every rank must appear in exactly one group of a "
                "collective's family",
            )
        return report

    # -- ZeRO / FSDP consistency (SH405) -----------------------------------------------

    def verify_zero(
        self,
        config: ZeroConfig,
        n_params: int,
        world_size: int,
        capacity_bytes: Optional[int] = None,
        report: Optional[AnalysisReport] = None,
        location: str = "zero",
    ) -> AnalysisReport:
        """SH405 over a ZeRO config against the memory projection."""
        if report is None:
            report = AnalysisReport("sharding")
        report.note_checked("zero_configs")
        problems: List[str] = []
        if config.dp != world_size:
            problems.append(
                f"dp={config.dp} does not match the pool's world size "
                f"{world_size} (ZeRO shards over every rank of the group)"
            )
        unsharded = zero_memory_per_rank(
            n_params, ZeroConfig(ZeroStage.DDP, config.dp)
        )
        sharded = zero_memory_per_rank(n_params, config)
        if sharded > unsharded:
            problems.append(
                f"stage {int(config.stage)} footprint {sharded} exceeds the "
                f"unsharded footprint {unsharded}"
            )
        if config.dp > 1 and config.stage >= ZeroStage.PARAMETERS:
            gather = zero_param_gather_volume(n_params, config)
            full = n_params * 2  # BF16 params, per the model's byte constants
            expected = (config.dp - 1) * full // config.dp
            if gather != expected:
                problems.append(
                    f"param gather volume {gather} disagrees with the "
                    f"all-gather algebra {expected}"
                )
        if config.dp > 1 and zero_grad_sync_volume(n_params, config) <= 0:
            problems.append("multi-rank config reports no gradient sync traffic")
        if capacity_bytes is not None:
            from repro.perf.memory import USABLE_FRACTION

            usable = int(capacity_bytes * USABLE_FRACTION)
            if sharded > usable:
                problems.append(
                    f"sharded training state {sharded} B exceeds usable "
                    f"device capacity {usable} B"
                )
        if problems:
            report.add(
                "SH405",
                ERROR,
                "; ".join(problems),
                location=location,
                hint="ZeRO degree must equal the DP group size and the "
                "projected footprint must fit the device (Appendix C)",
            )
        return report

    def verify_fsdp(
        self,
        config: FsdpConfig,
        n_params: int,
        world_size: int,
        capacity_bytes: Optional[int] = None,
        report: Optional[AnalysisReport] = None,
        location: str = "fsdp",
    ) -> AnalysisReport:
        """SH405 over an FSDP config; its ZeRO mapping must not drift."""
        if report is None:
            report = AnalysisReport("sharding")
        zero = config.as_zero()
        drift = []
        if fsdp_memory_per_rank(n_params, config) != zero_memory_per_rank(
            n_params, zero
        ):
            drift.append("memory")
        if fsdp_param_gather_volume(n_params, config) != zero_param_gather_volume(
            n_params, zero
        ):
            drift.append("param gather volume")
        if fsdp_grad_sync_volume(n_params, config) != zero_grad_sync_volume(
            n_params, zero
        ):
            drift.append("grad sync volume")
        if drift:
            report.add(
                "SH405",
                ERROR,
                f"FSDP strategy {config.strategy!r} drifted from its ZeRO "
                f"equivalent (stage {int(zero.stage)}) on: " + ", ".join(drift),
                location=location,
                hint="FsdpConfig.as_zero must stay memory- and "
                "traffic-equivalent to the mapped ZeRO stage",
            )
        return self.verify_zero(
            zero,
            n_params,
            world_size,
            capacity_bytes=capacity_bytes,
            report=report,
            location=location,
        )


def _dedupe(groups) -> List[ProcessGroup]:
    seen = set()
    out: List[ProcessGroup] = []
    for group in groups:
        key = tuple(group.ranks)
        if key not in seen:
            seen.add(key)
            out.append(group)
    return out
