"""Post-execution happens-before audit of traces, timelines, and ledgers.

The observability layer (spans, the Figure 3 timeline replay, the per-device
memory ledgers) records what a run *did*; the :class:`TraceAuditor` turns
those records into a checkable artifact by verifying the invariants a
correct single-controller execution must satisfy:

========  ====================================================================
``TA201``  two busy intervals overlap on one pool/track (a pool time-shares)
``TA202``  a child span's interval escapes its parent's
``TA203``  a memory tag is still allocated at run end (leak)
``TA204``  a tag is freed twice without an allocation in between
``TA205``  a ledger event left a negative balance
``TA206``  device busy-time accounting disagrees with the timeline replay
========  ====================================================================

Three entry points: :meth:`TraceAuditor.audit_system` for a live
:class:`~repro.runtime.RlhfSystem`, :meth:`TraceAuditor.audit` for explicit
spans/timeline/devices, and :meth:`TraceAuditor.audit_chrome_trace` for an
exported ``trace_event`` JSON document (as a viewer sees it).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.analysis.report import ERROR, WARNING, AnalysisReport

#: Tag suffixes resident by design between stages (§2.3): parameters,
#: gradients and optimizer state live for the whole job, so they are not
#: leaks when the run ends with them allocated.
PERSISTENT_SUFFIXES = ("/params", "/grads", "/optim")


class TraceAuditor:
    """Happens-before and ledger-consistency checks over a finished run."""

    def __init__(
        self,
        tolerance: float = 1e-6,
        persistent_suffixes: Tuple[str, ...] = PERSISTENT_SUFFIXES,
    ) -> None:
        self.tolerance = tolerance
        self.persistent_suffixes = persistent_suffixes

    # -- entry points ----------------------------------------------------------------

    def audit_system(self, system: Any) -> AnalysisReport:
        """Audit a live system: spans + rebuilt timeline + device ledgers.

        The busy-accounting cross-check (``TA206``) is skipped when a fault
        injector is attached — straggler-inflated durations legitimately
        diverge from the timeline's duration table.
        """
        from repro.runtime.timeline import build_timeline

        controller = system.controller
        timeline = build_timeline(controller)
        devices = []
        seen = set()
        for group in system.groups.values():
            for worker in group.workers:
                device = worker.ctx.device
                if device.global_rank not in seen:
                    seen.add(device.global_rank)
                    devices.append(device)
        device_pools = {}
        for group in system.groups.values():
            for worker in group.workers:
                device_pools[worker.ctx.device.global_rank] = (
                    group.resource_pool.name
                )
        return self.audit(
            spans=getattr(controller.tracer, "spans", ()),
            timeline=timeline,
            devices=devices,
            device_pools=device_pools,
            check_busy_accounting=(
                getattr(controller, "fault_injector", None) is None
            ),
        )

    def audit(
        self,
        spans: Iterable[Any] = (),
        timeline: Optional[Any] = None,
        devices: Iterable[Any] = (),
        device_pools: Optional[Dict[int, str]] = None,
        check_busy_accounting: bool = True,
    ) -> AnalysisReport:
        report = AnalysisReport("trace_audit")
        if timeline is not None:
            self._check_timeline_overlaps(timeline, report)
        self._check_span_nesting(list(spans), report)
        devices = list(devices)
        for device in devices:
            self._check_ledger(device, report)
        if (
            timeline is not None
            and check_busy_accounting
            and device_pools is not None
        ):
            self._check_busy_accounting(
                timeline, devices, device_pools, report
            )
        return report

    def audit_chrome_trace(self, doc: Dict[str, Any]) -> AnalysisReport:
        """Audit an exported ``trace_event`` document (pid 0 + pid 1 tracks).

        Reads only the serialized JSON, exactly as a trace viewer would, so
        the golden trace file itself is a checkable artifact.
        """
        from repro.observability.export import _US, SPANS_PID, TIMELINE_PID

        report = AnalysisReport("trace_audit")
        intervals: Dict[Tuple[int, int], List[Tuple[float, float, str]]] = {}
        spans_by_id: Dict[int, Tuple[float, float, Optional[int], str]] = {}
        track_names: Dict[Tuple[int, int], str] = {}
        for event in doc.get("traceEvents", []):
            pid, tid = event.get("pid"), event.get("tid")
            if event.get("ph") == "M" and event.get("name") == "thread_name":
                track_names[(pid, tid)] = event["args"]["name"]
            if event.get("ph") != "X":
                continue
            start = event["ts"] / _US
            end = (event["ts"] + event["dur"]) / _US
            if pid == TIMELINE_PID:
                intervals.setdefault((pid, tid), []).append(
                    (start, end, event.get("name", "?"))
                )
            elif pid == SPANS_PID:
                args = event.get("args", {})
                if "span_id" in args:
                    spans_by_id[args["span_id"]] = (
                        start,
                        end,
                        args.get("parent_id"),
                        event.get("name", "?"),
                    )
        for (pid, tid), events in sorted(intervals.items()):
            track = track_names.get((pid, tid), f"pid{pid}/tid{tid}")
            report.note_checked("tracks")
            self._flag_overlaps(events, f"trace {track}", report)
        report.note_checked("spans", len(spans_by_id))
        for span_id, (start, end, parent_id, name) in sorted(
            spans_by_id.items()
        ):
            if parent_id is None or parent_id not in spans_by_id:
                continue
            p_start, p_end, _, p_name = spans_by_id[parent_id]
            if (
                start < p_start - self.tolerance
                or end > p_end + self.tolerance
            ):
                report.add(
                    "TA202",
                    ERROR,
                    f"span {name!r} [{start:.3f}, {end:.3f}] escapes its "
                    f"parent {p_name!r} [{p_start:.3f}, {p_end:.3f}]",
                    location=f"span {span_id}",
                    hint="a child must end before its parent does",
                )
        return report

    # -- individual checks -----------------------------------------------------------

    def _flag_overlaps(
        self,
        events: List[Tuple[float, float, str]],
        location: str,
        report: AnalysisReport,
    ) -> None:
        ordered = sorted(events)
        for (s0, e0, n0), (s1, e1, n1) in zip(ordered, ordered[1:]):
            if s1 < e0 - self.tolerance:
                report.add(
                    "TA201",
                    ERROR,
                    f"{n1!r} starts at {s1:.3f} while {n0!r} still runs "
                    f"until {e0:.3f}",
                    location=location,
                    hint=(
                        "one pool executes one call at a time (colocated "
                        "models time-share, §2.3)"
                    ),
                )

    def _check_timeline_overlaps(
        self, timeline: Any, report: AnalysisReport
    ) -> None:
        for pool in timeline.pools():
            report.note_checked("pools")
            events = [
                (e.start, e.end, e.name) for e in timeline.events_on(pool)
            ]
            self._flag_overlaps(events, f"pool {pool}", report)

    def _check_span_nesting(
        self, spans: List[Any], report: AnalysisReport
    ) -> None:
        by_id = {s.span_id: s for s in spans if s.finished}
        report.note_checked("spans", len(by_id))
        for span in spans:
            if not span.finished or span.parent_id is None:
                continue
            parent = by_id.get(span.parent_id)
            if parent is None:
                continue
            if (
                span.start < parent.start - self.tolerance
                or span.end > parent.end + self.tolerance
            ):
                report.add(
                    "TA202",
                    ERROR,
                    f"span {span.name!r} [{span.start:.3f}, {span.end:.3f}] "
                    f"escapes its parent {parent.name!r} "
                    f"[{parent.start:.3f}, {parent.end:.3f}]",
                    location=f"span {span.span_id}",
                    hint="a child must end before its parent does",
                )

    def _is_persistent(self, tag: str) -> bool:
        return any(tag.endswith(suffix) for suffix in self.persistent_suffixes)

    def _check_ledger(self, device: Any, report: AnalysisReport) -> None:
        memory = device.memory
        report.note_checked("devices")
        for tag, nbytes in memory.tags():
            if nbytes > 0 and not self._is_persistent(tag):
                report.add(
                    "TA203",
                    ERROR,
                    f"tag {tag!r} still holds {nbytes} bytes at run end",
                    location=f"device {device.global_rank}",
                    hint=(
                        "free transient allocations (KV caches, transition "
                        "buffers) when their stage finishes"
                    ),
                )
        last_op: Dict[str, str] = {}
        for event in getattr(memory, "events", ()):
            report.note_checked("ledger_events")
            if event.balance < 0:
                report.add(
                    "TA205",
                    ERROR,
                    f"{event.op} on {event.tag!r} left a negative balance "
                    f"({event.balance} bytes)",
                    location=f"device {device.global_rank}",
                    hint="the ledger can never go below zero",
                )
            if (
                event.op == "free"
                and event.nbytes == 0
                and event.tag in memory.ever_allocated
                and last_op.get(event.tag) == "free"
            ):
                report.add(
                    "TA204",
                    ERROR,
                    f"tag {event.tag!r} freed twice with no allocation in "
                    "between",
                    location=f"device {device.global_rank}",
                    hint="track ownership of the buffer; free it once",
                )
            last_op[event.tag] = event.op

    def _check_busy_accounting(
        self,
        timeline: Any,
        devices: List[Any],
        device_pools: Dict[int, str],
        report: AnalysisReport,
    ) -> None:
        """Each device's ``occupy`` total must match its pool's replay (§4.1).

        The dispatch path occupies every device of a pool for the planned
        duration of each call; the timeline replays the same trace with the
        same duration table, so the two accountings agree on a clean run.
        """
        expected = {pool: timeline.busy_time(pool) for pool in timeline.pools()}
        for device in devices:
            pool = device_pools.get(device.global_rank)
            if pool is None or pool not in expected:
                continue
            report.note_checked("busy_accounted_devices")
            delta = abs(device.busy_time - expected[pool])
            if delta > max(self.tolerance, 1e-9 * expected[pool]):
                report.add(
                    "TA206",
                    WARNING,
                    f"device busy time {device.busy_time:.3f}s disagrees "
                    f"with the timeline's {expected[pool]:.3f}s for pool "
                    f"{pool!r} (delta {delta:.3f}s)",
                    location=f"device {device.global_rank}",
                    hint=(
                        "occupy() charges and the replay's duration table "
                        "must come from the same model"
                    ),
                )
