"""Static and post-hoc analysis of composed RLHF dataflows (``repro check``).

Seven passes behind one report type:

* :class:`DataflowChecker` — pre-execution: protocol/topology compatibility,
  batch divisibility, serving config, projected memory vs capacity, per-
  algorithm plan structure (PPO / ReMax / GRPO / Safe-RLHF).
* :class:`TraceAuditor` — post-execution: happens-before over spans,
  timeline overlap, memory-ledger leaks / double frees / negative balances,
  busy-accounting consistency.
* :class:`RepoLint` — AST rules over the source tree (seeded RNG only, no
  wall-clock reads, no float ``==``, json via ``json_safe``, no module-state
  mutation in workers, no stale suppressions).
* :class:`ShardingVerifier` — static proof that training shards partition
  the parameter space, the train→generation gather plan is complete and
  (under HYBRIDFLOW grouping) redundancy-free, collective group families
  partition their pools, and ZeRO/FSDP configs match the memory projection.
* :class:`RaceDetector` — vector-clock happens-before over the execution
  trace plus the shared-state access log; flags conflicting accesses with
  no ordering edge, including the nondeterministic ``merge_outputs`` hazard.
* :class:`ModelChecker` — bounded stateless model checking with sleep-set
  partial-order reduction over explicit state-machine models of the
  shipped concurrent protocols (async pipeline, drain hand-off, fleet
  gang scheduling); violations carry minimal counterexample schedules
  replayable through the RaceDetector / TraceAuditor.
* :class:`ShapeFlowChecker` — abstract interpretation of symbolic array
  shapes and dtypes through the whole algorithm graph: declarative
  ``@shape_contract`` specs on worker methods, per-protocol split/collect
  transfer functions, serving reassembly, the train→generation transition
  plan, and async-pipeline staleness; a :class:`ShapeRecorder` cross-
  validates the static inference against real run shapes.

All findings carry a rule id (``DF1xx`` / ``TA2xx`` / ``RL3xx`` / ``SH4xx``
/ ``RC5xx`` / ``MC6xx`` / ``SF7xx``), severity, location, and fix hint;
see ``docs/ANALYSIS.md`` for the catalog.
"""

from repro.analysis.dataflow import DataflowChecker, registered_methods
from repro.analysis.modelcheck import (
    MC_RULES,
    Counterexample,
    ModelChecker,
    ModelCheckResult,
    cross_validate,
    seeded_mutants,
    shipped_models,
)
from repro.analysis.races import RaceDetector
from repro.analysis.report import ERROR, WARNING, AnalysisReport, Finding
from repro.analysis.repolint import ALL_RULES, RepoLint
from repro.analysis.shapeflow import (
    MUTATIONS as SF_MUTATIONS,
    SF_RULES,
    ContractError,
    Dim,
    ProbeGroup,
    ShapeFlowChecker,
    ShapeRecorder,
    SymArray,
    parse_contract,
    predict_protocol_shapes,
    predict_system_outputs,
    shipped_graph_reports,
)
from repro.analysis.shapeflow import cross_validate as shape_cross_validate
from repro.analysis.shapeflow import seeded_mutants as shape_seeded_mutants
from repro.analysis.sharding import (
    ShardingVerifier,
    sweep_cells,
    sweep_difference_fraction,
    sweep_overlap_fraction,
    sweep_union_fraction,
)
from repro.analysis.trace_audit import PERSISTENT_SUFFIXES, TraceAuditor

__all__ = [
    "ALL_RULES",
    "AnalysisReport",
    "ContractError",
    "Counterexample",
    "DataflowChecker",
    "Dim",
    "ERROR",
    "Finding",
    "MC_RULES",
    "ModelCheckResult",
    "ModelChecker",
    "PERSISTENT_SUFFIXES",
    "ProbeGroup",
    "RaceDetector",
    "RepoLint",
    "SF_MUTATIONS",
    "SF_RULES",
    "ShapeFlowChecker",
    "ShapeRecorder",
    "ShardingVerifier",
    "SymArray",
    "TraceAuditor",
    "WARNING",
    "cross_validate",
    "parse_contract",
    "predict_protocol_shapes",
    "predict_system_outputs",
    "registered_methods",
    "seeded_mutants",
    "shape_cross_validate",
    "shape_seeded_mutants",
    "shipped_graph_reports",
    "shipped_models",
    "sweep_cells",
    "sweep_difference_fraction",
    "sweep_overlap_fraction",
    "sweep_union_fraction",
]
