"""Static and post-hoc analysis of composed RLHF dataflows (``repro check``).

Three passes behind one report type:

* :class:`DataflowChecker` — pre-execution: protocol/topology compatibility,
  batch divisibility, serving config, projected memory vs capacity.
* :class:`TraceAuditor` — post-execution: happens-before over spans,
  timeline overlap, memory-ledger leaks / double frees / negative balances,
  busy-accounting consistency.
* :class:`RepoLint` — AST rules over the source tree (seeded RNG only, no
  wall-clock reads, no float ``==``, json via ``json_safe``, no module-state
  mutation in workers).

All findings carry a rule id (``DF1xx`` / ``TA2xx`` / ``RL3xx``), severity,
location, and fix hint; see ``docs/ANALYSIS.md`` for the catalog.
"""

from repro.analysis.dataflow import DataflowChecker, registered_methods
from repro.analysis.report import ERROR, WARNING, AnalysisReport, Finding
from repro.analysis.repolint import ALL_RULES, RepoLint
from repro.analysis.trace_audit import PERSISTENT_SUFFIXES, TraceAuditor

__all__ = [
    "ALL_RULES",
    "AnalysisReport",
    "DataflowChecker",
    "ERROR",
    "Finding",
    "PERSISTENT_SUFFIXES",
    "RepoLint",
    "TraceAuditor",
    "WARNING",
    "registered_methods",
]
