"""MC6xx — bounded model checking of the shipped concurrent protocols.

The RC5xx race detector and TA2xx trace auditor are *dynamic*: they audit
the one schedule an execution happened to take.  The protocols those
schedules come from — the one-step-off async pipeline, the serving drain
hand-off, the fleet gang scheduler — are concurrent, and their bugs live
in the schedules that did *not* run.  This pass explores all of them, at
small scope: each protocol is modelled as an explicit state machine
(:mod:`repro.analysis.protocols`) and a stateless depth-first checker
enumerates every interleaving up to a depth/state budget, pruning
provably-equivalent orders with sleep-set partial-order reduction.

Checked invariants (the MC6xx catalog, see :data:`MC_RULES`):

============  =======================================================
``MC601``     deadlock freedom — no reachable non-quiescent state
              without an enabled action
``MC602``     livelock freedom — no schedule returns to an earlier
              state without making progress
``MC603``     the staleness bound ``W`` is never exceeded
``MC604``     no experience batch is lost, overwritten, or
              double-consumed
``MC605``     a weight buffer is never written while readable
``MC606``     every published weight version is consumable — an
              acquire never returns a version older than the staged one
``MC607``     gangs never overlap — a device belongs to at most one
              admitted gang
``MC608``     preemption never loses work — a preempted job resumes at
              its preemption point
``MC609``     streaming hand-off — ``on_finish`` fires exactly once per
              request, after completion, in completion order
============  =======================================================

A violation is reported as a ``Finding`` carrying a *minimal*
counterexample schedule (breadth-first shortened after the DFS finds a
witness).  Counterexamples are replayable:
:func:`~repro.analysis.protocols.core.replay_schedule` turns one into
trace records + access events + a synthetic ledger device, which
:func:`cross_validate` feeds to the existing
:class:`~repro.analysis.races.RaceDetector` and
:class:`~repro.analysis.trace_audit.TraceAuditor` — a dropped guard found
by the checker shows up again as RC501 / TA205 in the dynamic passes.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.analysis.protocols import (
    AsyncPipelineModel,
    DrainHandoffModel,
    FleetGangModel,
    JobSpec,
    ProtocolModel,
    independent,
    replay_schedule,
)
from repro.analysis.report import ERROR, AnalysisReport

#: rule -> (title, fix hint attached to every finding of that rule)
MC_RULES: Dict[str, Tuple[str, str]] = {
    "MC601": (
        "protocol deadlock",
        "replay the schedule with replay_schedule() and inspect which "
        "guard starves the blocked thread",
    ),
    "MC602": (
        "protocol livelock",
        "the schedule returns to an earlier state without progress; "
        "break the cycle with a strict priority or progress measure",
    ),
    "MC603": (
        "staleness bound exceeded",
        "gate rollout.begin on the newest *published* version, not the "
        "trainer's step counter",
    ),
    "MC604": (
        "experience batch lost or double-handled",
        "keep the BufferFull occupancy guard ahead of every put and pop "
        "each index exactly once",
    ),
    "MC605": (
        "weight buffer written while readable",
        "publish into the inactive buffer only; flip active/staged "
        "atomically at a generate-call boundary",
    ),
    "MC606": (
        "published weight version lost",
        "acquire must flip to the staged buffer before decoding starts",
    ),
    "MC607": (
        "overlapping gang admission",
        "grant a gang only devices that are alive AND free; admission "
        "must be atomic per gang",
    ),
    "MC608": (
        "preempted work lost",
        "checkpoint the victim synchronously inside the preemption, "
        "before its devices are handed to the waiter",
    ),
    "MC609": (
        "streaming hand-off violated",
        "invoke on_finish only for the head of the completion queue, "
        "after its final decode step",
    ),
}


@dataclasses.dataclass(frozen=True)
class Counterexample:
    """A schedule (action-name sequence) driving a model into a violation."""

    rule: str
    message: str
    schedule: Tuple[str, ...]
    model: str

    def render(self) -> str:
        return " -> ".join(self.schedule)


@dataclasses.dataclass
class ModelCheckResult:
    """Everything one bounded exploration of one model produced."""

    model: str
    states: int = 0
    transitions: int = 0
    truncated: bool = False
    counterexamples: List[Counterexample] = dataclasses.field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        return not self.counterexamples

    def by_rule(self) -> Dict[str, Counterexample]:
        return {ce.rule: ce for ce in self.counterexamples}


class _Frame:
    """One explicit DFS stack entry (the checker never recurses)."""

    __slots__ = ("state", "enabled", "idx", "sleep", "done")

    def __init__(self, state: Any, enabled: List[Any], sleep: set) -> None:
        self.state = state
        self.enabled = enabled
        self.idx = 0
        self.sleep = sleep
        self.done: List[Any] = []


class ModelChecker:
    """Bounded stateless explorer with sleep-set partial-order reduction.

    ``max_depth`` bounds schedule length, ``max_states`` bounds distinct
    states per model (exceeding either sets ``truncated`` instead of
    failing).  ``reduce=False`` disables the sleep-set pruning (useful to
    validate the reduction itself); ``shrink=False`` keeps the first DFS
    witness instead of breadth-first minimising it.

    A violating state is a frontier: its rules are recorded (first
    witness per rule, later minimised) and it is not expanded further, so
    one seeded fault reports exactly one rule instead of a cascade.
    """

    def __init__(
        self,
        max_depth: int = 400,
        max_states: int = 60_000,
        reduce: bool = True,
        shrink: bool = True,
    ) -> None:
        self.max_depth = max_depth
        self.max_states = max_states
        self.reduce = reduce
        self.shrink = shrink

    # -- single-model exploration ------------------------------------------------------

    def check_model(self, model: ProtocolModel) -> ModelCheckResult:
        result = ModelCheckResult(model=model.name)
        found: Dict[str, Counterexample] = {}

        def record(rule: str, message: str, schedule: List[str]) -> None:
            if rule not in found:
                found[rule] = Counterexample(
                    rule, message, tuple(schedule), model.name
                )

        init = model.initial_state()
        seen = {init}
        # state -> sleep sets it was expanded under; re-expansion is only
        # skipped when a recorded sleep set is a subset of the current one
        # (everything outside the current sleep set was already explored).
        expanded: Dict[Any, List[FrozenSet[Any]]] = {}
        on_path = {init}

        init_viols = model.state_violations(init)
        for rule, message in init_viols:
            record(rule, message, [])
        if not init_viols:
            enabled = model.enabled(init)
            if not enabled:
                if model.is_terminal(init):
                    for rule, message in model.final_violations(init):
                        record(rule, message, [])
                else:
                    record(rule="MC601", message=self._deadlock_message(
                        model, init), schedule=[])
            else:
                expanded[init] = [frozenset()]
                stack = [_Frame(init, enabled, set())]
                path: List[str] = []
                while stack:
                    frame = stack[-1]
                    if len(seen) >= self.max_states:
                        result.truncated = True
                        break
                    if frame.idx >= len(frame.enabled):
                        stack.pop()
                        on_path.discard(frame.state)
                        if path:
                            path.pop()
                        continue
                    action = frame.enabled[frame.idx]
                    frame.idx += 1
                    if action in frame.sleep:
                        continue
                    child = model.apply(frame.state, action)
                    result.transitions += 1
                    child_sleep = {
                        b
                        for b in frame.sleep.union(frame.done)
                        if independent(action, b)
                    }
                    frame.done.append(action)
                    path.append(action.name)
                    seen.add(child)
                    viols = model.state_violations(child)
                    if viols:
                        for rule, message in viols:
                            record(rule, message, path)
                        path.pop()
                        continue
                    if child in on_path:
                        record(
                            rule="MC602",
                            message=(
                                "livelock: the schedule revisits an "
                                "earlier state without progress"
                            ),
                            schedule=path,
                        )
                        path.pop()
                        continue
                    child_enabled = model.enabled(child)
                    if not child_enabled:
                        if model.is_terminal(child):
                            for rule, message in model.final_violations(
                                child
                            ):
                                record(rule, message, path)
                        else:
                            record(
                                rule="MC601",
                                message=self._deadlock_message(
                                    model, child
                                ),
                                schedule=path,
                            )
                        path.pop()
                        continue
                    if len(path) >= self.max_depth:
                        result.truncated = True
                        path.pop()
                        continue
                    sleep_key = frozenset(child_sleep)
                    recorded = expanded.get(child)
                    if (
                        self.reduce
                        and recorded is not None
                        and any(z <= sleep_key for z in recorded)
                    ):
                        path.pop()
                        continue
                    expanded.setdefault(child, []).append(sleep_key)
                    stack.append(_Frame(child, child_enabled, child_sleep))
                    on_path.add(child)

        result.states = len(seen)
        for rule, ce in sorted(found.items()):
            if self.shrink and rule != "MC602" and ce.schedule:
                shorter = self._shrink(model, rule, len(ce.schedule))
                if shorter is not None:
                    ce = shorter
            result.counterexamples.append(ce)
        return result

    @staticmethod
    def _deadlock_message(model: ProtocolModel, state: Any) -> str:
        return (
            "deadlock: no action is enabled but the protocol has not "
            "quiesced — threads are mutually blocked"
        )

    def _shrink(
        self, model: ProtocolModel, rule: str, bound: int
    ) -> Optional[Counterexample]:
        """Breadth-first search for the shortest schedule exhibiting
        ``rule``, bounded by the DFS witness length (no reduction — BFS
        must stay complete to be minimal)."""
        init = model.initial_state()
        queue = deque([(init, ())])
        seen = {init}
        expansions = 0
        while queue:
            state, sched = queue.popleft()
            if len(sched) >= bound:
                continue
            for action in model.enabled(state):
                expansions += 1
                if expansions > self.max_states:
                    return None
                child = model.apply(state, action)
                csched = sched + (action.name,)
                viols = model.state_violations(child)
                for r, message in viols:
                    if r == rule:
                        return Counterexample(
                            rule, message, csched, model.name
                        )
                if viols:
                    continue
                enabled = model.enabled(child)
                if not enabled:
                    if model.is_terminal(child):
                        for r, message in model.final_violations(child):
                            if r == rule:
                                return Counterexample(
                                    rule, message, csched, model.name
                                )
                    elif rule == "MC601":
                        return Counterexample(
                            rule,
                            self._deadlock_message(model, child),
                            csched,
                            model.name,
                        )
                    continue
                if child not in seen and len(csched) < bound:
                    seen.add(child)
                    queue.append((child, csched))
        return None

    # -- report-level entry points -----------------------------------------------------

    def check_all(
        self,
        models: Iterable[ProtocolModel],
        report: Optional[AnalysisReport] = None,
    ) -> AnalysisReport:
        """Check every model, folding violations into an AnalysisReport.

        Results (including counterexample schedules and coverage
        counters) are kept on ``self.last_results`` for callers that
        need more than findings — the CLI's MC report artifact and the
        cross-validation tests read them from there.
        """
        report = report or AnalysisReport("modelcheck")
        self.last_results: List[ModelCheckResult] = []
        for model in models:
            result = self.check_model(model)
            self.last_results.append(result)
            report.note_checked("mc_models")
            report.note_checked("mc_states", result.states)
            report.note_checked("mc_transitions", result.transitions)
            if result.truncated:
                report.note_checked("mc_truncated")
            for ce in result.counterexamples:
                title, hint = MC_RULES.get(ce.rule, ("", ""))
                schedule = ce.render() or "<initial state>"
                report.add(
                    rule=ce.rule,
                    severity=ERROR,
                    message=f"{ce.message} [schedule: {schedule}]",
                    location=f"model:{ce.model}",
                    hint=hint,
                )
        return report

    def check_shipped(
        self, report: Optional[AnalysisReport] = None
    ) -> AnalysisReport:
        return self.check_all(shipped_models(), report=report)


def shipped_models() -> Tuple[ProtocolModel, ...]:
    """The intact protocol suite `repro check --models` gates on.

    Configurations are chosen so the union explores a six-figure
    transition count and five-figure distinct-state count within the CI
    budget: the pipeline at several staleness windows (W=0 is the
    synchronous PPO degenerate case, W>=2 exercises deep run-ahead), the
    drain hand-off with slot contention, and fleet scenarios covering
    preemption, faults mid-gang, and capacity-starved give-up.
    """
    return (
        AsyncPipelineModel(n_iterations=4, window=0),
        AsyncPipelineModel(n_iterations=5, window=1),
        AsyncPipelineModel(n_iterations=6, window=2),
        AsyncPipelineModel(n_iterations=10, window=3, capacity=4),
        AsyncPipelineModel(n_iterations=12, window=4, capacity=4),
        DrainHandoffModel(targets=(2, 1, 2), slots=2),
        DrainHandoffModel(targets=(1, 2, 1, 2), slots=3),
        FleetGangModel(
            jobs=(
                JobSpec("a", 3, 2, 2, arrival=1),
                JobSpec("b", 2, 2, 2),
                JobSpec("c", 1, 1, 3),
                JobSpec("d", 1, 2, 2),
            ),
            capacity=5,
            kills=(4,),
        ),
        FleetGangModel(
            jobs=(JobSpec("a", 1, 2, 2), JobSpec("b", 1, 2, 1)),
            capacity=2,
        ),
        FleetGangModel(
            jobs=(JobSpec("a", 1, 3, 1), JobSpec("b", 2, 1, 2)),
            capacity=3,
            kills=(0, 2),
        ),
    )


def seeded_mutants() -> Tuple[Tuple[ProtocolModel, str], ...]:
    """(mutated model, expected MC rule) pairs for the mutation smoke.

    Each model has exactly ONE guard flipped; the checker must report
    exactly that rule, and the minimised counterexample must replay into
    an RC501 race or TA205 ledger violation (see :func:`cross_validate`).
    """
    return (
        (
            AsyncPipelineModel(
                n_iterations=4,
                window=1,
                capacity=3,
                mutate="drop_staleness_guard",
            ),
            "MC603",
        ),
        (
            AsyncPipelineModel(
                n_iterations=3,
                window=2,
                capacity=2,
                mutate="skip_slot_guard",
            ),
            "MC604",
        ),
        (
            AsyncPipelineModel(
                n_iterations=4, window=1, mutate="publish_into_active"
            ),
            "MC605",
        ),
        (
            DrainHandoffModel(
                targets=(2, 1), slots=2, mutate="skip_done_guard"
            ),
            "MC609",
        ),
        (
            FleetGangModel(
                jobs=(JobSpec("a", 1, 2, 1), JobSpec("b", 1, 2, 1)),
                capacity=3,
                mutate="drop_gang_guard",
            ),
            "MC607",
        ),
    )


def cross_validate(
    model: ProtocolModel, schedule: Iterable[str]
) -> AnalysisReport:
    """Replay a (counterexample) schedule through the dynamic validators.

    The schedule is re-executed on the model; the emitted trace records
    and access events go to :class:`~repro.analysis.races.RaceDetector`,
    the synthetic ledger device to
    :class:`~repro.analysis.trace_audit.TraceAuditor`.  An intact
    protocol's schedules replay clean; a mutant's counterexample is
    flagged by RC501 (unordered conflicting accesses) and/or TA205
    (ledger contract violated).
    """
    from repro.analysis.races import RaceDetector
    from repro.analysis.trace_audit import TraceAuditor

    records, events, device = replay_schedule(model, list(schedule))
    report = AnalysisReport(f"replay:{model.name}")
    RaceDetector().detect(records, events, report=report)
    report.merge(
        TraceAuditor().audit(devices=[device], check_busy_accounting=False)
    )
    return report


__all__ = [
    "Counterexample",
    "MC_RULES",
    "ModelChecker",
    "ModelCheckResult",
    "cross_validate",
    "seeded_mutants",
    "shipped_models",
]
