"""Static pre-execution checks of a composed RLHF dataflow (§4.1, Table 3).

A misconfigured dataflow — a ``@register``-ed method whose transfer protocol
cannot run on its group's topology, a global batch the DP split does not
divide, a placement whose projected memory exceeds device capacity — fails
today deep inside an iteration, at dispatch time.  The
:class:`DataflowChecker` reports the same problems *before* any dispatch, as
findings against the declarative :class:`~repro.single_controller.protocols.
ProtocolRequires` descriptors the runtime dispatch gate itself enforces, so
the static check and the runtime behaviour can never drift.

Rules:

========  ====================================================================
``DF101``  protocol requirements vs the group's parallelism topology
``DF102``  global batch size not divisible by a protocol's split degree
``DF103``  serving / eos / pad configuration inconsistencies
``DF104``  placement's projected persistent memory exceeds device capacity
``DF105``  placement plan structure (missing roles, missing gen config)
``DF106``  plan assigns a model role the algorithm's dataflow never calls
``DF107``  GRPO group sampling misconfigured (``group_size < 2``)
``DF108``  async pipeline staleness misconfigured (stale batches without
           importance weighting, window exceeding buffer capacity, clip or
           algorithm the off-policy correction cannot support)
========  ====================================================================
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import ERROR, WARNING, AnalysisReport
from repro.config import ClusterSpec, ModelSpec, RlhfWorkload
from repro.single_controller.decorator import registered_protocol
from repro.single_controller.protocols import get_protocol

#: Worker roles holding optimizer state (their *training* footprint is the
#: persistent one); forward-only roles persist parameters alone.
_TRAINABLE_DEFAULT = True


def registered_methods(worker_cls: type) -> List[Tuple[str, str]]:
    """``(method_name, protocol_name)`` for every ``@register``-ed method."""
    out = []
    for name in sorted(dir(worker_cls)):
        if name.startswith("_"):
            continue
        protocol = registered_protocol(getattr(worker_cls, name, None))
        if protocol is not None:
            out.append((name, protocol))
    return out


class _RoleShape:
    """The topology facts the checker needs about one model role."""

    def __init__(
        self,
        role: str,
        worker_cls: type,
        pool: str,
        world_size: int,
        parallel: Any,
        gen_config: Any = None,
        has_gen_topology: Optional[bool] = None,
        use_serving: bool = False,
    ) -> None:
        self.role = role
        self.worker_cls = worker_cls
        self.pool = pool
        self.world_size = world_size
        self.parallel = parallel
        self.gen_config = gen_config
        self.has_gen_topology = (
            has_gen_topology
            if has_gen_topology is not None
            else gen_config is not None
        )
        #: Serving-backed actors take variable-length batches; their batch
        #: divisibility is deferred to the symbolic SF703 check instead of
        #: the static DF102 one (which would be a false positive).
        self.use_serving = use_serving


class DataflowChecker:
    """Pre-execution validation of a built system or a placement plan.

    Args:
        global_batch_size: When given, every batch-splitting protocol's
            degree must divide it (``DF102``).
        model_specs: Role -> :class:`~repro.config.ModelSpec` for the memory
            projection (``DF104``); roles without a spec (tiny functional
            models, function rewards) skip the memory check.
        workload: Sequence shape for activation/KV estimates; defaults to
            :class:`~repro.config.RlhfWorkload` defaults.
        cluster_spec: Device capacity for ``DF104``.
    """

    def __init__(
        self,
        global_batch_size: Optional[int] = None,
        model_specs: Optional[Dict[str, ModelSpec]] = None,
        workload: Optional[RlhfWorkload] = None,
        cluster_spec: Optional[ClusterSpec] = None,
    ) -> None:
        self.global_batch_size = global_batch_size
        self.model_specs = model_specs or {}
        self.workload = workload or RlhfWorkload()
        self.cluster_spec = cluster_spec

    # -- entry points ----------------------------------------------------------------

    def check_system(self, system: Any) -> AnalysisReport:
        """Validate a built :class:`~repro.runtime.RlhfSystem` pre-dispatch."""
        report = AnalysisReport("dataflow")
        shapes = []
        for role, group in system.groups.items():
            shapes.append(
                _RoleShape(
                    role=role,
                    worker_cls=group.worker_cls,
                    pool=group.resource_pool.name,
                    world_size=group.world_size,
                    parallel=group.train_topology.config,
                    gen_config=(
                        group.gen_topology.config
                        if group.gen_topology is not None
                        else None
                    ),
                    has_gen_topology=group.gen_topology is not None,
                    use_serving=any(
                        getattr(w, "use_serving", False)
                        for w in group.workers
                    ),
                )
            )
        self._check_shapes(shapes, report)
        for role, group in system.groups.items():
            for worker in group.workers:
                if getattr(worker, "use_serving", False):
                    self._check_serving(role, worker, report)
                    break  # one finding per role, not per rank
        return report

    def check_plan(
        self,
        algo: Any,
        plan: Any,
        function_rewards: Sequence[str] = (),
        group_size: Optional[int] = None,
    ) -> AnalysisReport:
        """Validate an algorithm + placement plan *before* building workers.

        Covers every shipped dataflow variant (PPO, ReMax, GRPO, Safe-RLHF,
        Figure 1): role requirements differ per algorithm, and GRPO carries
        the extra group-sampling constraint.

        Args:
            function_rewards: Roles served by a non-NN
                :class:`~repro.workers.RewardFunctionWorker` (the builder's
                ``reward_fn`` / ``cost_fn`` path), which registers
                ``one_to_one`` methods instead of ``3d_proto``.
            group_size: GRPO responses sampled per prompt
                (``TrainerConfig.group_size``); its learning stage trains on
                ``global_batch_size * group_size`` sequences.  ``None``
                inherits the trainer's default.
        """
        # imported here: repro.runtime.builder imports workers, trainers and
        # the controller — the checker stays importable without that stack
        from repro.rlhf.core import AlgoType
        from repro.runtime.builder import _WORKER_CLASSES, required_models
        from repro.workers import RewardFunctionWorker

        report = AnalysisReport("dataflow")
        algo = AlgoType(algo)
        missing = [
            m for m in required_models(algo) if m not in plan.assignments
        ]
        if missing:
            report.add(
                "DF105",
                ERROR,
                f"{algo.value} needs assignments for {missing}",
                location="plan",
                hint="add the missing roles to PlacementPlan.assignments",
            )
        if (
            "actor" in plan.assignments
            and plan.assignments["actor"].gen_parallel is None
        ):
            report.add(
                "DF105",
                ERROR,
                "the actor assignment has no gen_parallel config",
                location="plan.actor",
                hint="derive one with GenParallelConfig.derive(parallel, ...)",
            )
        needed = set(required_models(algo))
        for role in sorted(plan.assignments):
            report.note_checked("roles")
            if role in _WORKER_CLASSES and role not in needed:
                report.add(
                    "DF106",
                    WARNING,
                    f"plan assigns {role!r}, but the {algo.value} dataflow "
                    "never calls it — the pool's GPUs sit idle",
                    location=f"plan.{role}",
                    hint=f"{algo.value} uses {sorted(needed)}; drop the "
                    "assignment or switch algorithms",
                )
        if algo is AlgoType.GRPO:
            if group_size is None:
                from repro.rlhf.trainers import TrainerConfig

                group_size = TrainerConfig().group_size
            # the learning stage trains on batch * group_size sequences; the
            # split-degree divisibility below already transfers (d | b ⇒
            # d | b·g), so the only extra constraint is the group itself
            report.note_checked("grpo_group_size")
            if group_size < 2:
                report.add(
                    "DF107",
                    ERROR,
                    f"GRPO group_size={group_size}: group-normalised "
                    "advantages need at least 2 samples per prompt (the "
                    "group std of a single sample is zero)",
                    location="plan",
                    hint="set TrainerConfig.group_size >= 2",
                )
        shapes = []
        for role, assignment in plan.assignments.items():
            if role in function_rewards:
                worker_cls: type = RewardFunctionWorker
            else:
                worker_cls = _WORKER_CLASSES.get(role)
            if worker_cls is None:
                continue
            shapes.append(
                _RoleShape(
                    role=role,
                    worker_cls=worker_cls,
                    pool=assignment.pool,
                    world_size=assignment.parallel.world_size,
                    parallel=assignment.parallel,
                    gen_config=assignment.gen_parallel,
                )
            )
        self._check_shapes(shapes, report)
        return report

    def check_pipeline(
        self,
        pipeline_config: Any,
        trainer_config: Any = None,
        algo: Any = None,
        actor: Any = None,
    ) -> AnalysisReport:
        """Validate an async-pipeline configuration *before* any overlap.

        The bounded-staleness loop (:mod:`repro.pipeline`) is sound only
        under specific conditions; each violation is a ``DF108`` finding:

        * ``staleness_window > 0`` with importance weighting disabled —
          stale batches would be trained as if on-policy, silently biasing
          the PPO/GRPO surrogate;
        * a window the experience buffer cannot hold (``window + 1``
          in-flight batches exceed capacity) — the rollout engine would
          dead-end on :class:`~repro.pipeline.buffer.BufferFull`;
        * ``iw_clip < 1`` — truncation below 1 scales even on-policy
          tokens, breaking the ``staleness=0 ⇒ weight ≡ 1`` invariant;
        * an algorithm without an off-policy correction path;
        * ``recompute_log_probs=False`` with a positive window (warning) —
          the anchor collapses onto the behaviour policy and every
          importance weight degenerates to 1;
        * an ``actor`` group without a generation topology — the
          :class:`~repro.hybrid_engine.publication.WeightPublisher` has no
          plan to stage weights into, so the first publish would fail at
          runtime instead of at config time;
        * a serving-backed ``actor`` (``use_serving=True``) — the
          continuous-batching engine owns its own weight lifetime and
          cannot participate in the pipeline's flip-buffer protocol.
        """
        report = AnalysisReport("dataflow")
        report.note_checked("pipeline_configs")
        window = pipeline_config.staleness_window
        location = "pipeline"
        if window < 0:
            report.add(
                "DF108",
                ERROR,
                f"staleness_window must be >= 0, got {window}",
                location=location,
                hint="0 = synchronous loop, 1 = one-step-off overlap",
            )
            return report
        if window > 0 and not pipeline_config.importance_weighting:
            report.add(
                "DF108",
                ERROR,
                f"staleness_window={window} with importance weighting "
                "disabled: stale batches would be trained as if on-policy",
                location=location,
                hint="enable importance_weighting or set staleness_window=0",
            )
        capacity = pipeline_config.resolved_capacity
        if window + 1 > capacity:
            report.add(
                "DF108",
                ERROR,
                f"staleness_window={window} needs {window + 1} in-flight "
                f"batches but the experience buffer holds {capacity}",
                location=location,
                hint="raise buffer_capacity to at least staleness_window + 1",
            )
        if pipeline_config.iw_clip < 1.0:
            report.add(
                "DF108",
                ERROR,
                f"iw_clip={pipeline_config.iw_clip} < 1 would down-scale "
                "on-policy tokens; truncation must keep ratio 1 intact",
                location=location,
                hint="set iw_clip >= 1 (V-trace uses 1.0; 2.0 is a safe "
                "default)",
            )
        if algo is not None:
            from repro.rlhf.core import AlgoType

            algo = AlgoType(algo)
            if algo not in (AlgoType.PPO, AlgoType.GRPO):
                report.add(
                    "DF108",
                    ERROR,
                    f"{algo.value} has no off-policy correction path in the "
                    "async pipeline (PPO and GRPO are supported)",
                    location=location,
                    hint="run the synchronous trainer for this algorithm",
                )
        if (
            window > 0
            and trainer_config is not None
            and not trainer_config.recompute_log_probs
        ):
            report.add(
                "DF108",
                WARNING,
                "recompute_log_probs=False with a positive staleness window: "
                "the importance-weight anchor equals the behaviour policy, "
                "so every weight degenerates to 1 and stale batches are "
                "effectively uncorrected",
                location=location,
                hint="enable TrainerConfig.recompute_log_probs for async runs",
            )
        if actor is not None:
            if getattr(actor, "gen_topology", None) is None:
                report.add(
                    "DF108",
                    ERROR,
                    "actor group has no generation topology: the weight "
                    "publisher has no plan to stage published weights into",
                    location=location,
                    hint="build the actor with a generation parallel config "
                    "(gen_parallel=...) before wiring the async pipeline",
                )
            elif any(
                getattr(worker, "use_serving", False)
                for worker in getattr(actor, "workers", ())
            ):
                report.add(
                    "DF108",
                    ERROR,
                    "actor generation is serving-backed (use_serving=True): "
                    "the continuous-batching engine owns its weight "
                    "lifetime and cannot follow the pipeline's "
                    "publish/flip protocol",
                    location=location,
                    hint="disable use_serving for async-pipeline runs, or "
                    "drive the serving engine synchronously",
                )
        return report

    # -- individual passes -----------------------------------------------------------

    def _check_shapes(
        self, shapes: List[_RoleShape], report: AnalysisReport
    ) -> None:
        for shape in shapes:
            self._check_protocols(shape, report)
        self._check_memory(shapes, report)

    def _check_protocols(
        self, shape: _RoleShape, report: AnalysisReport
    ) -> None:
        # aggregate identical problems across a role's methods into one
        # finding each, so a 4-method worker yields one precise diagnosis
        by_problem: Dict[Tuple[str, str, str, str], List[str]] = {}
        by_split: Dict[Tuple[str, int], List[str]] = {}
        for method, protocol_name in registered_methods(shape.worker_cls):
            protocol = get_protocol(protocol_name)
            report.note_checked("methods")
            for kind, severity, message in protocol.validate_shape(
                shape.world_size, shape.parallel, shape.has_gen_topology
            ):
                key = (protocol_name, kind, severity, message)
                by_problem.setdefault(key, []).append(method)
            degree = protocol.requires.split_degree(
                shape.parallel, shape.gen_config
            )
            if degree is not None and degree > 0:
                by_split.setdefault((protocol_name, degree), []).append(method)
        for (protocol_name, _kind, severity, message), methods in sorted(
            by_problem.items()
        ):
            report.add(
                "DF101",
                severity,
                f"{protocol_name} {message} "
                f"[{shape.role}: {', '.join(methods)}]",
                location=f"{shape.role}@{shape.pool} {shape.parallel}",
                hint=(
                    "pick a protocol matching the topology or reshape the "
                    "group (Table 3)"
                ),
            )
        if self.global_batch_size is not None:
            for (protocol_name, degree), methods in sorted(by_split.items()):
                if getattr(shape, "use_serving", False):
                    # serving-backed actors submit variable-length batches;
                    # a static global batch is not required — divisibility
                    # moves to the symbolic dim (shapeflow rule SF703, with
                    # a pad-up fix hint) instead of a false DF102 here
                    report.note_checked("deferred_batch_splits")
                    continue
                report.note_checked("batch_splits")
                if self.global_batch_size % degree:
                    report.add(
                        "DF102",
                        ERROR,
                        f"global batch {self.global_batch_size} is not "
                        f"divisible by the {protocol_name} split degree "
                        f"{degree} [{shape.role}: {', '.join(methods)}]",
                        location=f"{shape.role}@{shape.pool} {shape.parallel}",
                        hint=(
                            "make the batch a multiple of every DP degree "
                            "it is chunked into"
                        ),
                    )

    def _check_serving(
        self, role: str, worker: Any, report: AnalysisReport
    ) -> None:
        report.note_checked("serving_configs")
        location = f"{role}.serving"
        vocab = getattr(
            getattr(worker, "model_config", None), "vocab_size", None
        )
        eos = getattr(worker, "eos_token_id", None)
        if eos is not None and vocab is not None and not 0 <= eos < vocab:
            report.add(
                "DF103",
                ERROR,
                f"eos_token_id {eos} outside the model vocabulary "
                f"[0, {vocab})",
                location=location,
                hint="the sampler can never emit it; sequences never stop",
            )
        cfg = getattr(worker, "serving_config", None)
        if cfg is None:
            return
        if cfg.max_slots < 1:
            report.add(
                "DF103", ERROR,
                f"serving max_slots must be >= 1, got {cfg.max_slots}",
                location=location, hint="no request could ever be admitted",
            )
        if cfg.block_size < 1:
            report.add(
                "DF103", ERROR,
                f"serving block_size must be >= 1, got {cfg.block_size}",
                location=location, hint="KV pages need at least one token",
            )
        if cfg.n_blocks is not None and cfg.n_blocks < cfg.max_slots:
            report.add(
                "DF103",
                WARNING,
                f"only {cfg.n_blocks} KV blocks for {cfg.max_slots} slots; "
                "the engine will thrash on preempt-and-recompute",
                location=location,
                hint="give each admissible slot at least one block",
            )
        pad = cfg.pad_token_id
        if pad is not None and vocab is not None and not 0 <= pad < vocab:
            report.add(
                "DF103",
                ERROR,
                f"pad_token_id {pad} outside the model vocabulary [0, {vocab})",
                location=location,
                hint="padding must be a real token id",
            )
        if cfg.eos_token_id is not None and cfg.eos_token_id != eos:
            report.add(
                "DF103",
                WARNING,
                f"serving_config.eos_token_id={cfg.eos_token_id} differs from "
                f"the worker's eos_token_id={eos}; the worker's value wins "
                "per call",
                location=location,
                hint="drop the serving-config field or make them agree",
            )

    def _check_memory(
        self, shapes: List[_RoleShape], report: AnalysisReport
    ) -> None:
        """Projected per-GPU persistent memory per pool vs capacity (App. C)."""
        if self.cluster_spec is None or not self.model_specs:
            return
        from repro.perf.memory import USABLE_FRACTION, MemoryModel

        usable = self.cluster_spec.gpu.memory_bytes * USABLE_FRACTION

        by_pool: Dict[str, List[Tuple[str, float, float]]] = {}
        for shape in shapes:
            spec = self.model_specs.get(shape.role)
            if spec is None:
                continue
            model = MemoryModel(spec, self.cluster_spec)
            trainable = getattr(
                shape.worker_cls, "trainable", _TRAINABLE_DEFAULT
            )
            if trainable:
                stage = model.training(shape.parallel, self.workload)
            else:
                stage = model.inference(shape.parallel, self.workload)
            by_pool.setdefault(shape.pool, []).append(
                (shape.role, stage.persistent, stage.total - stage.persistent)
            )
        for pool, entries in sorted(by_pool.items()):
            report.note_checked("pools_projected")
            persistent = sum(p for _, p, _ in entries)
            # colocated models execute sequentially (§2.3): transient memory
            # peaks one model at a time, so the max rides on top
            transient = max(t for _, _, t in entries)
            projected = persistent + transient
            if projected > usable:
                roles = ", ".join(
                    f"{role} {p / 1e9:.1f}GB" for role, p, _ in entries
                )
                report.add(
                    "DF104",
                    ERROR,
                    f"pool {pool!r} projects {projected / 1e9:.1f} GB/GPU "
                    f"(persistent {roles} + transient "
                    f"{transient / 1e9:.1f}GB) but only "
                    f"{usable / 1e9:.1f} GB is usable",
                    location=f"pool {pool}",
                    hint=(
                        "raise the model-parallel degree, split the "
                        "colocation, or use bigger devices (§6)"
                    ),
                )
