"""RaceDetector: vector-clock happens-before analysis (rules RC5xx).

The simulated runtime executes one remote call at a time, so it can never
*show* a data race — but on a real cluster each resource pool runs
concurrently, and the only ordering guarantees are the ones the dataflow
actually expresses: program order within a pool, the future/lineage
dependency edges recorded in the execution trace, and the controller's own
sequential context (group construction, coordinated checkpoints) acting as
global barriers.  This pass rebuilds exactly that happens-before relation
with vector clocks and reports shared-state accesses it does not order.

Threads of the vector clock are the resource pools (colocated models on one
pool time-share, §2.3, so a pool is one unit of concurrency) plus a
synthetic ``"ctl"`` thread for controller-context work.  Nodes are the
dispatched calls (one per :class:`ExecutionRecord`) and *barrier* nodes — a
maximal run of controller-context access events between two dispatches.

Two accesses race when they touch the same resource, at least one writes,
and their nodes' clocks are concurrent (``RC501``); writes from different
ranks inside one dispatch race when the protocol's collect order is not
deterministic — the ``merge_outputs`` nondeterministic-merge hazard
(``RC502``).  ``RC503`` flags access events that reference a dispatch the
trace never recorded, which the analysis must skip.

Dependency seqs that are *absent* from the trace are skipped silently (and
counted): lineage legitimately crosses controllers in multi-stage pipelines
(e.g. a reward group trained under its own controller feeding PPO), and
those edges are not part of this controller's order.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.report import ERROR, WARNING, AnalysisReport
from repro.single_controller.access_log import WRITE, AccessEvent

#: Synthetic vector-clock thread for the controller's sequential context.
CTL_THREAD = "ctl"

VectorClock = Dict[str, int]


def _merge(into: VectorClock, other: VectorClock) -> None:
    for thread, tick in other.items():
        if tick > into.get(thread, 0):
            into[thread] = tick


def _leq(a: VectorClock, b: VectorClock) -> bool:
    return all(tick <= b.get(thread, 0) for thread, tick in a.items())


def _concurrent(a: VectorClock, b: VectorClock) -> bool:
    return not _leq(a, b) and not _leq(b, a)


class _Node:
    """One unit of the happens-before graph: a dispatch or a barrier."""

    __slots__ = ("key", "clock", "label")

    def __init__(self, key: Tuple[str, int], clock: VectorClock, label: str):
        self.key = key
        self.clock = clock
        self.label = label


class RaceDetector:
    """Vector-clock pass over an execution trace plus its access log."""

    def detect(
        self,
        trace: Sequence[Any],
        events: Iterable[AccessEvent] = (),
        report: Optional[AnalysisReport] = None,
    ) -> AnalysisReport:
        """Analyse ``trace`` (``ExecutionRecord``-shaped: ``seq``, ``pool``,
        ``group``, ``method``, ``deps``) and the shared-state ``events``."""
        if report is None:
            report = AnalysisReport("races")
        events = list(events)
        nodes = self._build_nodes(trace, events, report)
        self._check_same_node(events, nodes, report)
        self._check_cross_node(events, nodes, report)
        return report

    # -- happens-before construction ---------------------------------------------------

    def _build_nodes(
        self,
        trace: Sequence[Any],
        events: List[AccessEvent],
        report: AnalysisReport,
    ) -> Dict[Tuple[str, int], _Node]:
        barrier_positions = sorted(
            {e.after_seq for e in events if e.seq is None}
        )
        # processing order: a barrier at position k ran after call k-1
        # returned and before call k dispatched
        schedule: List[Tuple[int, int, Any]] = [
            (pos, 0, None) for pos in barrier_positions
        ]
        for record in trace:
            schedule.append((record.seq, 1, record))
        schedule.sort(key=lambda item: (item[0], item[1]))

        nodes: Dict[Tuple[str, int], _Node] = {}
        pool_last: Dict[str, VectorClock] = {}
        barrier_clock: VectorClock = {}
        for pos, kind, record in schedule:
            if kind == 0:  # barrier: joins every pool, ticks the ctl thread
                clock: VectorClock = dict(barrier_clock)
                for vc in pool_last.values():
                    _merge(clock, vc)
                clock[CTL_THREAD] = clock.get(CTL_THREAD, 0) + 1
                barrier_clock = clock
                nodes[("barrier", pos)] = _Node(
                    ("barrier", pos), clock, f"controller context @{pos}"
                )
                report.note_checked("barriers")
            else:  # dispatched call
                clock = dict(pool_last.get(record.pool, {}))
                _merge(clock, barrier_clock)
                for dep in record.deps:
                    dep_node = nodes.get(("call", dep))
                    if dep_node is None:
                        # absent seq: lineage from another controller, or a
                        # future edge — not an ordering edge of this trace
                        report.note_checked("skipped_deps")
                        continue
                    _merge(clock, dep_node.clock)
                clock[record.pool] = clock.get(record.pool, 0) + 1
                pool_last[record.pool] = clock
                nodes[("call", record.seq)] = _Node(
                    ("call", record.seq),
                    clock,
                    f"{record.group}.{record.method} (seq {record.seq})",
                )
                report.note_checked("calls")
        return nodes

    def _node_key(self, event: AccessEvent) -> Tuple[str, int]:
        if event.seq is None:
            return ("barrier", event.after_seq)
        return ("call", event.seq)

    # -- conflict passes ---------------------------------------------------------------

    def _check_same_node(
        self,
        events: List[AccessEvent],
        nodes: Dict[Tuple[str, int], _Node],
        report: AnalysisReport,
    ) -> None:
        """RC502: unordered multi-rank writes inside one dispatch.

        Barrier nodes are exempt — controller context is sequential by
        definition; inside a dispatch, per-rank work is concurrent and only
        a protocol's deterministic collect order serialises the merge.
        """
        grouped: Dict[Tuple[Tuple[str, int], str], List[AccessEvent]] = {}
        for event in events:
            key = self._node_key(event)
            if key[0] != "call":
                continue
            grouped.setdefault((key, event.resource), []).append(event)
        for (key, resource), group in sorted(grouped.items()):
            writers = {e.rank for e in group if e.kind == WRITE}
            unordered = [e for e in group if e.kind == WRITE and not e.ordered]
            if len(writers) > 1 and unordered:
                node = nodes.get(key)
                label = node.label if node is not None else f"seq {key[1]}"
                report.add(
                    "RC502",
                    ERROR,
                    f"{len(writers)} ranks write {resource!r} inside one "
                    f"dispatch ({label}) with no deterministic merge order — "
                    "merge_outputs would fold them in arrival order",
                    location=resource,
                    hint="collect in a fixed rank order (set the protocol's "
                    "deterministic_collect) or reduce on the workers first",
                )
            report.note_checked("merge_checks")

    def _check_cross_node(
        self,
        events: List[AccessEvent],
        nodes: Dict[Tuple[str, int], _Node],
        report: AnalysisReport,
    ) -> None:
        """RC501: conflicting accesses on concurrent nodes."""
        by_resource: Dict[str, Dict[Tuple[str, int], Dict[str, bool]]] = {}
        dangling = 0
        for event in events:
            key = self._node_key(event)
            if key not in nodes:
                dangling += 1
                continue
            summary = by_resource.setdefault(event.resource, {}).setdefault(
                key, {"write": False, "read": False}
            )
            summary["write" if event.kind == WRITE else "read"] = True
        if dangling:
            report.add(
                "RC503",
                WARNING,
                f"{dangling} access event(s) reference dispatches the trace "
                "never recorded; they were skipped by the race analysis",
                location="access_log",
                hint="record_access must run inside the dispatch it claims "
                "(controller.current_seq) — a stale seq hides races",
            )
        for resource, per_node in sorted(by_resource.items()):
            report.note_checked("resources")
            keys = sorted(per_node)
            racy_pairs: List[Tuple[str, str]] = []
            for i, a in enumerate(keys):
                for b in keys[i + 1 :]:
                    if not (per_node[a]["write"] or per_node[b]["write"]):
                        continue
                    report.note_checked("vc_comparisons")
                    if _concurrent(nodes[a].clock, nodes[b].clock):
                        racy_pairs.append((nodes[a].label, nodes[b].label))
            if racy_pairs:
                first = racy_pairs[0]
                report.add(
                    "RC501",
                    ERROR,
                    f"{len(racy_pairs)} conflicting access pair(s) on "
                    f"{resource!r} with no happens-before edge; e.g. "
                    f"{first[0]} vs {first[1]}",
                    location=resource,
                    hint="thread the consumer through the producer's future "
                    "(lineage dep) or a controller barrier so the order is "
                    "explicit",
                )

    # -- entry points ------------------------------------------------------------------

    def detect_system(
        self, system: Any, report: Optional[AnalysisReport] = None
    ) -> AnalysisReport:
        """Analyse a built RLHF system's controller trace + access log."""
        controller = system.controller if hasattr(system, "controller") else system
        return self.detect(
            controller.trace, controller.access_log.events, report=report
        )

    def detect_chrome_trace(
        self, doc: Dict[str, Any], report: Optional[AnalysisReport] = None
    ) -> AnalysisReport:
        """Rebuild the dispatch order from exported Chrome ``trace_event``
        JSON (pid 0 timeline + pid 1 dispatch spans) and run the vector-clock
        pass over it.

        Exported traces carry no access log, so this validates the recorded
        happens-before structure itself (every dependency resolvable and
        well-ordered) — golden trace files stay checkable artifacts.
        """
        if report is None:
            report = AnalysisReport("races")
        from repro.observability.export import SPANS_PID, TIMELINE_PID

        pools: Dict[int, str] = {}
        deps: Dict[int, List[int]] = {}
        for event in doc.get("traceEvents", []):
            args = event.get("args", {})
            if event.get("ph") != "X":
                continue
            if event.get("pid") == TIMELINE_PID and "seq" in args:
                pools[int(args["seq"])] = str(args.get("pool", "pool"))
            elif (
                event.get("pid") == SPANS_PID
                and event.get("cat") == "dispatch"
                and "seq" in args
            ):
                deps[int(args["seq"])] = [int(d) for d in args.get("deps", [])]

        class _Record:
            __slots__ = ("seq", "pool", "group", "method", "deps")

            def __init__(self, seq: int, pool: str, deps: Tuple[int, ...]):
                self.seq = seq
                self.pool = pool
                self.group = pool
                self.method = f"seq{seq}"
                self.deps = deps

        trace = [
            _Record(seq, pool, tuple(deps.get(seq, ())))
            for seq, pool in sorted(pools.items())
        ]
        return self.detect(trace, (), report=report)
