"""Findings and reports shared by every ``repro.analysis`` pass.

A :class:`Finding` is one diagnosed problem — a rule id (``DF1xx`` dataflow,
``TA2xx`` trace audit, ``RL3xx`` repo lint), a severity, a human message, the
location it anchors to, and a fix hint.  An :class:`AnalysisReport` collects
findings from one or more passes, counts what was actually checked (so "zero
findings" is distinguishable from "checked nothing"), and exports through the
same :func:`~repro.serialization.json_safe` sanitizer as every other report
in the repo.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List

from repro.serialization import json_safe

ERROR = "error"
WARNING = "warning"
_SEVERITIES = (ERROR, WARNING)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One diagnosed problem."""

    rule: str
    severity: str
    message: str
    location: str
    hint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise ValueError(
                f"severity must be one of {_SEVERITIES}, got {self.severity!r}"
            )

    def render(self) -> str:
        hint = f"  (hint: {self.hint})" if self.hint else ""
        return f"{self.severity:7s} {self.rule} {self.location}: {self.message}{hint}"


class AnalysisReport:
    """Findings plus coverage counters from one or more analysis passes."""

    def __init__(self, name: str = "analysis") -> None:
        self.name = name
        self.findings: List[Finding] = []
        #: What the pass actually looked at, e.g. ``{"methods": 14}`` — lets
        #: callers tell an all-clear from a pass that never ran.
        self.checked: Dict[str, int] = {}

    def add(
        self,
        rule: str,
        severity: str,
        message: str,
        location: str,
        hint: str = "",
    ) -> Finding:
        finding = Finding(
            rule=rule, severity=severity, message=message,
            location=location, hint=hint,
        )
        self.findings.append(finding)
        return finding

    def note_checked(self, what: str, n: int = 1) -> None:
        self.checked[what] = self.checked.get(what, 0) + n

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == WARNING]

    def by_rule(self, rule: str) -> List[Finding]:
        return [f for f in self.findings if f.rule == rule]

    def family_counts(self) -> Dict[str, int]:
        """Finding counts per rule family (``DF101`` -> ``DF1xx``), sorted.

        The family is the rule's prefix with the last two digits wildcarded
        — the unit CI logs grep for (`DF1xx=2 RC5xx=1 ...`).
        """
        counts: Dict[str, int] = {}
        for finding in self.findings:
            family = finding.rule[:-2] + "xx" if len(finding.rule) >= 2 else finding.rule
            counts[family] = counts.get(family, 0) + 1
        return dict(sorted(counts.items()))

    def ok(self, strict: bool = False) -> bool:
        """True when the report gates a run: no errors (nor warnings, strict)."""
        return not self.errors and not (strict and self.warnings)

    def merge(self, other: "AnalysisReport") -> "AnalysisReport":
        self.findings.extend(other.findings)
        for what, n in other.checked.items():
            self.note_checked(what, n)
        return self

    def to_dict(self) -> Dict[str, Any]:
        return json_safe(
            {
                "name": self.name,
                "checked": dict(self.checked),
                "n_errors": len(self.errors),
                "n_warnings": len(self.warnings),
                "findings": [dataclasses.asdict(f) for f in self.findings],
            },
            "analysis_report",
        )

    def summary_lines(self) -> List[str]:
        checked = ", ".join(
            f"{what}={n}" for what, n in sorted(self.checked.items())
        )
        lines = [
            f"{self.name}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
            + (f" [checked {checked}]" if checked else "")
        ]
        for finding in self.findings:
            lines.append(f"  {finding.render()}")
        return lines

    def __repr__(self) -> str:
        return (
            f"AnalysisReport({self.name!r}, errors={len(self.errors)}, "
            f"warnings={len(self.warnings)})"
        )
