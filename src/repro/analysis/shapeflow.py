"""Symbolic shape/dtype flow analysis over the RLHF dataflow graph (SF7xx).

The seventh static pass behind ``repro check``: an abstract interpreter that
propagates *symbolic array shapes and dtypes* through a whole algorithm graph
— PPO, ReMax, Safe-RLHF, GRPO (Figure 1) — before any worker exists.  Dims
are affine expressions over the batch ``B``, prompt length ``P``, response
length ``R``, the GRPO ``group_size`` ``G``, and concrete ints; dtypes are
tracked by family so integer token buffers cannot silently become float64.

What flows where is derived from three declarative sources:

* **shape contracts** — ``@shape_contract`` annotations on worker methods
  (:mod:`repro.single_controller.decorator`), stating the columns a method
  consumes and produces with their symbolic shapes and dtypes;
* **transfer protocols** — each registered method's
  :class:`~repro.single_controller.protocols.ProtocolRequires` gives the
  batch split degree (divisibility) and collect semantics (all shipped
  splitting protocols restore the full batch on collect);
* **engine geometry** — the train→gen :func:`plan_transition` gather plans
  are cross-checked against the SH4xx :mod:`repro.parallel.sharding`
  interval geometry, and the serving reassembly path against its
  fixed-width + ``response_mask``/``response_lengths`` invariants.

Rules:

=======  ==================================================================
SF701    shape mismatch at a role boundary (or transition-plan coverage)
SF702    mask/length inconsistency (eos vs ``response_mask``)
SF703    dim not divisible under the assigned sharding
SF704    silent dtype promotion (float64 creep) on a hot path
SF705    padding/packing invariant violation (context or reassembly width)
SF706    missing or unsound shape contract
=======  ==================================================================

A runtime :class:`ShapeRecorder` samples real collected batches during
execution; :func:`cross_validate` compares them against the static
inference, so every contract is either proven or witnessed (the MC6xx
``cross_validate`` idiom).  ``seeded_mutants()`` returns one checker per
rule with a single flipped guard — the mutation smoke test.
"""

from __future__ import annotations

import dataclasses
from fractions import Fraction
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import ERROR, AnalysisReport
from repro.single_controller.decorator import (
    registered_protocol,
    registered_shape_contract,
)
from repro.single_controller.protocols import get_protocol

SF_RULES: Dict[str, Tuple[str, str]] = {
    "SF701": (
        "shape mismatch at a role boundary",
        "align the producer's @shape_contract outputs with the consumer's "
        "inputs — the symbolic dims must unify column by column",
    ),
    "SF702": (
        "mask/length inconsistency",
        "generate with eos_token_id produces response_mask; keep the eos "
        "config and the mask columns in sync end to end",
    ),
    "SF703": (
        "dim not divisible under the assigned sharding",
        "make every batch dim a multiple of the split degree it is chunked "
        "into (pad serving batches up, or lower the DP/micro-DP degree)",
    ),
    "SF704": (
        "silent dtype promotion (float64 creep) on a hot path",
        "pass dtype= explicitly at the array's birthplace; integer token "
        "buffers must stay int64 through concatenation",
    ),
    "SF705": (
        "padding/packing invariant violation",
        "keep prompt_length + max_new_tokens within the model's max_seq_len "
        "and the serving engine's fixed reassembly width",
    ),
    "SF706": (
        "missing or unsound shape contract",
        "decorate the worker method with @shape_contract(inputs=..., "
        "outputs=...) so the SF pass can verify the boundary",
    ),
}

#: One flipped contract/guard per rule (the PR-9 seeded-mutant idiom).
MUTATIONS: Dict[str, str] = {
    "widen_values": "SF701",
    "drop_mask": "SF702",
    "skew_batch": "SF703",
    "promote_pad": "SF704",
    "shrink_ctx": "SF705",
    "forget_contract": "SF706",
}

_SYMBOLS = ("B", "P", "R", "L", "T", "G")
_DTYPES = ("int64", "float64", "float32", "bool")


class ContractError(ValueError):
    """A @shape_contract that cannot be interpreted (SF706)."""


# ---------------------------------------------------------------------------
# symbolic dims: polynomials over named symbols with Fraction coefficients
# ---------------------------------------------------------------------------


class Dim:
    """An affine/polynomial dim expression, e.g. ``B``, ``4*B``, ``P+R``.

    Internally a map monomial → coefficient where a monomial is a sorted
    tuple of symbol names (empty = the constant term).  Coefficients are
    :class:`~fractions.Fraction` so per-rank chunk sizes like ``B/2`` stay
    exact.  Instances are immutable and hash/compare structurally.
    """

    __slots__ = ("terms",)

    def __init__(self, terms: Dict[Tuple[str, ...], Any]) -> None:
        clean = {
            tuple(m): Fraction(c) for m, c in terms.items() if Fraction(c)
        }
        object.__setattr__(self, "terms", tuple(sorted(clean.items())))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Dim is immutable")

    @classmethod
    def const(cls, value: int) -> "Dim":
        return cls({(): Fraction(value)})

    @classmethod
    def sym(cls, name: str) -> "Dim":
        return cls({(name,): Fraction(1)})

    def _as_dim(self, other: Any) -> Optional["Dim"]:
        if isinstance(other, Dim):
            return other
        if isinstance(other, int):
            return Dim.const(other)
        return None

    def __add__(self, other: Any) -> "Dim":
        o = self._as_dim(other)
        if o is None:
            return NotImplemented
        terms = {m: c for m, c in self.terms}
        for m, c in o.terms:
            terms[m] = terms.get(m, Fraction(0)) + c
        return Dim(terms)

    __radd__ = __add__

    def __mul__(self, other: Any) -> "Dim":
        o = self._as_dim(other)
        if o is None:
            return NotImplemented
        terms: Dict[Tuple[str, ...], Fraction] = {}
        for m1, c1 in self.terms:
            for m2, c2 in o.terms:
                m = tuple(sorted(m1 + m2))
                terms[m] = terms.get(m, Fraction(0)) + c1 * c2
        return Dim(terms)

    __rmul__ = __mul__

    def over(self, divisor: int) -> "Dim":
        """This dim scaled by ``1/divisor`` (a per-rank chunk size)."""
        return Dim({m: c / divisor for m, c in self.terms})

    def __eq__(self, other: Any) -> bool:
        o = self._as_dim(other)
        return NotImplemented if o is None else self.terms == o.terms

    def __hash__(self) -> int:
        return hash(self.terms)

    def const_value(self) -> Optional[int]:
        """The concrete integer value, or None if symbolic/non-integral."""
        if not self.terms:
            return 0
        if len(self.terms) == 1 and self.terms[0][0] == ():
            c = self.terms[0][1]
            return int(c) if c.denominator == 1 else None
        return None

    def subst(self, env: Dict[str, int]) -> Optional[int]:
        """Evaluate under concrete symbol bindings; None if under-bound."""
        total = Fraction(0)
        for mono, coef in self.terms:
            value = coef
            for name in mono:
                if name not in env:
                    return None
                value *= env[name]
            total += value
        return int(total) if total.denominator == 1 else None

    def divisible_by(self, divisor: int) -> Optional[bool]:
        """True/False when decidable; None when it depends on the symbols.

        A symbolic dim is provably divisible when every coefficient is an
        integer multiple of ``divisor`` (e.g. ``4*B`` by 2 for any int B);
        otherwise divisibility is deferred, not refuted.
        """
        value = self.const_value()
        if value is not None:
            return value % divisor == 0
        if all(
            c.denominator == 1 and c.numerator % divisor == 0
            for _, c in self.terms
        ):
            return True
        return None

    def render(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for mono, coef in self.terms:
            syms = "*".join(mono)
            num, den = coef.numerator, coef.denominator
            if not mono:
                text = str(coef)
            elif num == 1 and den == 1:
                text = syms
            elif den == 1:
                text = f"{num}*{syms}"
            elif num == 1:
                text = f"{syms}/{den}"
            else:
                text = f"{num}*{syms}/{den}"
            parts.append(text)
        return "+".join(parts)

    def __repr__(self) -> str:
        return f"Dim({self.render()})"


@dataclasses.dataclass(frozen=True)
class SymArray:
    """A symbolic array: a tuple of :class:`Dim` plus a dtype name."""

    dims: Tuple[Dim, ...]
    dtype: str

    def render(self) -> str:
        return _render_dims(self.dims) + f":{self.dtype}"


def _render_dims(dims: Sequence[Dim]) -> str:
    return "(" + ", ".join(d.render() for d in dims) + ")"


def _family(dtype: str) -> str:
    if dtype.startswith("int") or dtype.startswith("uint"):
        return "int"
    if dtype == "bool":
        return "bool"
    return "float"


# ---------------------------------------------------------------------------
# contract parsing
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ColumnSpec:
    """One column in a contract: name, symbolic dim tokens, dtype."""

    name: str
    tokens: Tuple[str, ...]
    dtype: str
    optional: bool = False


@dataclasses.dataclass(frozen=True)
class Contract:
    inputs: Tuple[ColumnSpec, ...]
    outputs: Tuple[ColumnSpec, ...]
    returns: str  # "batch" | "metrics"


def _parse_spec(name: str, spec: Any) -> ColumnSpec:
    optional = name.startswith("?")
    if optional:
        name = name[1:]
    if not name:
        raise ContractError("empty column name")
    if not isinstance(spec, str) or not spec.strip():
        raise ContractError(f"column {name!r}: spec must be a string")
    if ":" in spec:
        dims_part, dtype = spec.split(":", 1)
    else:
        dims_part, dtype = spec, "float64"
    dtype = dtype.strip()
    if dtype not in _DTYPES:
        raise ContractError(f"column {name!r}: unknown dtype {dtype!r}")
    tokens = tuple(t.strip() for t in dims_part.split(",") if t.strip())
    if not tokens:
        raise ContractError(f"column {name!r}: empty dims")
    for token in tokens:
        if not (token.isdigit() or token in _SYMBOLS):
            raise ContractError(
                f"column {name!r}: unknown dim symbol {token!r} "
                f"(known: {', '.join(_SYMBOLS)})"
            )
    return ColumnSpec(name=name, tokens=tokens, dtype=dtype, optional=optional)


def parse_contract(raw: Any) -> Contract:
    """Validate a raw ``@shape_contract`` payload into a :class:`Contract`."""
    if not isinstance(raw, dict):
        raise ContractError("contract payload must be a dict")
    returns = raw.get("returns", "batch")
    if returns not in ("batch", "metrics"):
        raise ContractError(f"returns must be 'batch' or 'metrics', got {returns!r}")
    inputs = tuple(
        _parse_spec(n, s) for n, s in (raw.get("inputs") or {}).items()
    )
    outputs = tuple(
        _parse_spec(n, s) for n, s in (raw.get("outputs") or {}).items()
    )
    if returns == "metrics" and outputs:
        raise ContractError("a metrics method declares no output columns")
    return Contract(inputs=inputs, outputs=outputs, returns=returns)


# ---------------------------------------------------------------------------
# per-protocol transfer functions (closed forms over ProtocolRequires)
# ---------------------------------------------------------------------------


class ProbeGroup:
    """Duck-typed stand-in for a WorkerGroup — just enough geometry for
    ``TransferProtocol.distribute``/``collect``: the property test replays
    real protocols through it and compares against the closed forms."""

    def __init__(self, parallel: Any, gen_config: Any = None, mode=None) -> None:
        from repro.parallel.topology import (
            GenGroupingMode,
            GenTopology,
            ParallelTopology,
        )

        self.name = "probe"
        self.train_topology = ParallelTopology(parallel)
        self.world_size = parallel.world_size
        self.gen_topology = (
            GenTopology(
                self.train_topology,
                gen_config,
                mode or GenGroupingMode.HYBRIDFLOW,
            )
            if gen_config is not None
            else None
        )

    def coords(self, index: int):
        return self.train_topology.coords(index)

    def global_rank_of(self, index: int) -> int:
        return index


def predict_protocol_shapes(
    protocol_name: str,
    parallel: Any,
    gen_config: Any = None,
    batch_size: Optional[int] = None,
) -> Dict[str, Any]:
    """Closed-form transfer function of one protocol over one topology.

    Returns the per-rank batch rows each worker sees after ``distribute``
    and the shape of the collected result — derived from the protocol's
    :class:`ProtocolRequires` (split degree) plus its collect mode.  The
    SF pass leans on the central invariant encoded here: every shipped
    *splitting* protocol's collect restores the full batch, so symbolic
    flow shapes are protocol-invariant and only divisibility can fail.
    """
    requires = get_protocol(protocol_name).requires
    world = parallel.world_size
    degree = requires.split_degree(parallel, gen_config)
    out: Dict[str, Any] = {
        "protocol": protocol_name,
        "world_size": world,
        "degree": degree,
    }
    if requires.splits_batch_by is not None:
        if batch_size is not None and degree and batch_size % degree == 0:
            out["per_rank_rows"] = batch_size // degree
        else:
            out["per_rank_rows"] = None
        out["collect"] = "merge"
        out["n_collected"] = degree
        out["collected_rows"] = batch_size
    elif requires.per_rank_args:
        out["per_rank_rows"] = None  # caller supplies per-rank args
        out["collect"] = "list"
        out["n_collected"] = world
        out["collected_rows"] = None
    elif protocol_name == "3d_pp_only":
        pp = parallel.pp
        out["per_rank_rows"] = batch_size
        out["collect"] = "list" if pp > 1 else "merge"
        out["n_collected"] = pp
        out["collected_rows"] = batch_size
    elif requires.single_rank:
        out["per_rank_rows"] = batch_size
        out["collect"] = "single"
        out["n_collected"] = 1
        out["collected_rows"] = batch_size
    else:  # broadcast, list collect (one_to_all)
        out["per_rank_rows"] = batch_size
        out["collect"] = "list"
        out["n_collected"] = world
        out["collected_rows"] = batch_size
    return out


# ---------------------------------------------------------------------------
# the abstract interpreter
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class _RoleFacts:
    """Static facts about one role's worker group (plan- or system-derived)."""

    role: str
    worker_cls: type
    pool: str
    parallel: Any
    gen_config: Any = None
    use_serving: bool = False


@dataclasses.dataclass
class _Env:
    """Ambient bindings one walk runs under.  ``tainted`` flips after an
    SF706 so a missing contract does not cascade into spurious SF701s."""

    B: Dim
    P: Dim
    R: Dim
    T: Dim
    group_size: int = 1
    eos: bool = False
    max_seq_len: Optional[int] = None
    prompt_length: Optional[int] = None
    max_new_tokens: Optional[int] = None
    updates_per_epoch: int = 1
    recompute_log_probs: bool = True
    tainted: bool = False


class ShapeFlowChecker:
    """Abstract interpreter emitting SF7xx findings over algorithm graphs.

    Entry points mirror the other analysis passes: :meth:`check_plan`
    (pre-build, from a placement plan), :meth:`check_system` (a constructed
    :class:`RlhfSystem`), :meth:`check_pipeline` (the async one-step-off
    loop), :meth:`check_transition` (train→gen gather plans vs the SH4xx
    geometry), and :meth:`check_shipped` over every shipped example graph.

    Args:
        global_batch_size: Default concrete batch for divisibility checks;
            ``None`` keeps ``B`` symbolic and *defers* divisibility.
        mutate: One of :data:`MUTATIONS` — flips exactly one guard so the
            named rule fires (seeded mutation smoke); ``None`` = faithful.
    """

    def __init__(
        self,
        global_batch_size: Optional[int] = None,
        mutate: Optional[str] = None,
    ) -> None:
        if mutate is not None and mutate not in MUTATIONS:
            raise ValueError(
                f"unknown mutation {mutate!r}; pick one of {sorted(MUTATIONS)}"
            )
        self.global_batch_size = global_batch_size
        self.mutate = mutate
        #: (role, method) -> {column: SymArray} of the last walk's collected
        #: outputs — the static side :func:`cross_validate` compares against.
        self.call_outputs: Dict[Tuple[str, str], Dict[str, SymArray]] = {}
        self.last_results: Dict[str, AnalysisReport] = {}

    # -- entry points -------------------------------------------------------

    def check_plan(
        self,
        algo: Any,
        plan: Any,
        function_rewards: Sequence[str] = (),
        *,
        batch_size: Optional[int] = None,
        prompt_length: Optional[int] = 4,
        max_new_tokens: Optional[int] = 8,
        max_seq_len: Optional[int] = None,
        eos_token_id: Optional[int] = None,
        use_serving: bool = False,
        trainer_config: Any = None,
        report: Optional[AnalysisReport] = None,
        _staleness: int = 0,
    ) -> AnalysisReport:
        """Walk one algorithm graph over a placement plan, pre-build.

        Args:
            function_rewards: Roles served by the non-NN
                :class:`RewardFunctionWorker` (``one_to_one`` methods).
            batch_size: Concrete global batch; ``None`` (and no checker
                default) keeps ``B`` symbolic — divisibility then *defers*
                instead of failing, the serving-batch generalization DF102
                hands over to this pass.
        """
        from repro.rlhf.core import AlgoType
        from repro.rlhf.trainers import TrainerConfig
        from repro.runtime.builder import _WORKER_CLASSES
        from repro.workers import RewardFunctionWorker

        report = report if report is not None else AnalysisReport("shapeflow")
        algo = AlgoType(algo)
        facts: Dict[str, _RoleFacts] = {}
        for role, assignment in plan.assignments.items():
            if role in function_rewards:
                worker_cls: Optional[type] = RewardFunctionWorker
            else:
                worker_cls = _WORKER_CLASSES.get(role)
            if worker_cls is None:
                continue
            facts[role] = _RoleFacts(
                role=role,
                worker_cls=worker_cls,
                pool=assignment.pool,
                parallel=assignment.parallel,
                gen_config=assignment.gen_parallel,
                use_serving=use_serving and role == "actor",
            )
        cfg = trainer_config or TrainerConfig()
        env = self._make_env(
            batch_size=batch_size,
            prompt_length=prompt_length,
            max_new_tokens=max_new_tokens,
            max_seq_len=max_seq_len,
            eos=eos_token_id is not None,
            cfg=cfg,
        )
        report.note_checked("graphs")
        self._walk(algo, facts, env, report, staleness=_staleness)
        return report

    def check_system(
        self,
        system: Any,
        batch_size: Optional[int] = None,
        prompt_length: Optional[int] = None,
    ) -> AnalysisReport:
        """Walk a constructed :class:`RlhfSystem`'s graph.

        Reads the real worker attributes (``max_new_tokens``,
        ``eos_token_id``, ``use_serving``, the TinyLM ``max_seq_len``) so
        the static prediction matches what the runtime recorder will see.
        """
        report = AnalysisReport("shapeflow")
        trainer = system.trainer
        facts: Dict[str, _RoleFacts] = {}
        for role, group in sorted(system.groups.items()):
            pool = getattr(group, "resource_pool", None)
            facts[role] = _RoleFacts(
                role=role,
                worker_cls=getattr(
                    group, "worker_cls", type(group.workers[0])
                ),
                pool=getattr(pool, "name", role),
                parallel=group.train_topology.config,
                gen_config=(
                    group.gen_topology.config if group.gen_topology else None
                ),
                use_serving=any(
                    getattr(w, "use_serving", False) for w in group.workers
                ),
            )
        actor0 = system.groups["actor"].workers[0]
        cfg = trainer.config
        env = self._make_env(
            batch_size=batch_size,
            prompt_length=prompt_length,
            max_new_tokens=getattr(actor0, "max_new_tokens", None),
            max_seq_len=getattr(
                getattr(actor0, "model_config", None), "max_seq_len", None
            ),
            eos=getattr(actor0, "eos_token_id", None) is not None,
            cfg=cfg,
        )
        report.note_checked("graphs")
        self._walk(trainer.algo, facts, env, report)
        return report

    def check_pipeline(
        self,
        pipeline_config: Any,
        trainer_config: Any = None,
        algo: Any = None,
        plan: Any = None,
        function_rewards: Sequence[str] = ("reward",),
        *,
        batch_size: Optional[int] = None,
        report: Optional[AnalysisReport] = None,
    ) -> AnalysisReport:
        """Shape-check the async one-step-off loop's version-tagged buffers.

        Stale batches (``staleness_window > 0`` with importance weighting)
        carry a per-token ``importance_weights`` column; the actor's update
        contract must declare it or training would crash (or worse, drop
        the off-policy correction) at the first overlapped step — SF701.
        """
        from repro.rlhf.core import AlgoType

        report = report if report is not None else AnalysisReport("shapeflow")
        algo = AlgoType(algo) if algo is not None else AlgoType.PPO
        if plan is None:
            plan = _tiny_plan(algo)
        window = pipeline_config.staleness_window
        weighted = getattr(pipeline_config, "importance_weighting", True)
        report.note_checked("pipeline_configs")
        # window+1 buffer versions in flight, all with identical symbolic
        # column shapes (the buffer is version-tagged, not shape-tagged)
        report.note_checked("buffer_versions", max(window, 0) + 1)
        staleness = window if (window > 0 and weighted) else 0
        return self.check_plan(
            algo,
            plan,
            function_rewards,
            batch_size=batch_size,
            max_seq_len=32,
            trainer_config=trainer_config,
            report=report,
            _staleness=staleness,
        )

    def check_transition(
        self,
        gen: Any,
        report: Optional[AnalysisReport] = None,
    ) -> AnalysisReport:
        """Cross-check a train→gen :func:`plan_transition` against SH4xx.

        Every rank's gather plan must (a) target exactly its generation
        shard, (b) cover that shard with its reused resting shard plus the
        received tiles, (c) source each tile from the sender's *training*
        shard, and — HYBRIDFLOW grouping only — (d) gather zero redundant
        bytes (§5.3 Eq. 1–2).  All arithmetic is exact Fractions.
        """
        from repro.hybrid_engine.engine import plan_transition
        from repro.parallel.sharding import generation_shard, training_shard
        from repro.parallel.topology import GenGroupingMode

        report = report if report is not None else AnalysisReport("shapeflow")
        plan = plan_transition(gen)
        train = gen.train
        hybrid = plan.mode is GenGroupingMode.HYBRIDFLOW
        tcfg = train.config
        where = (
            f"transition pp{tcfg.pp} tp{tcfg.tp} dp{tcfg.dp}->"
            f"pp{gen.config.pp} tp{gen.config.tp} [{plan.mode.name}]"
        )
        for rank, rank_plan in sorted(plan.by_rank.items()):
            report.note_checked("transition_ranks")
            target = rank_plan.target
            if target != generation_shard(gen, rank):
                report.add(
                    "SF701",
                    ERROR,
                    f"rank {rank}: plan target is not the rank's generation "
                    "shard under the §5.1 grouping",
                    location=where,
                    hint=SF_RULES["SF701"][1],
                )
            pieces = [rank_plan.reused] + [t.shard for t in rank_plan.tiles]
            covered = sum(
                (p.overlap_fraction(target) for p in pieces), Fraction(0)
            )
            if covered != target.fraction:
                report.add(
                    "SF701",
                    ERROR,
                    f"rank {rank}: gather plan covers {covered} of the "
                    f"generation shard's {target.fraction} of the weights",
                    location=where,
                    hint="the reused shard plus the gather tiles must tile "
                    "the generation shard exactly (§5.3 Eq. 1)",
                )
            if hybrid:
                report.note_checked("zero_redundancy_ranks")
                gathered = sum(
                    (p.fraction for p in pieces), Fraction(0)
                )
                if gathered != target.fraction:
                    report.add(
                        "SF701",
                        ERROR,
                        f"rank {rank}: gathers {gathered} of the weights for "
                        f"a {target.fraction} generation shard — redundant "
                        "bytes under HYBRIDFLOW grouping",
                        location=where,
                        hint="§5.3 Eq. 2: interval grouping is "
                        "zero-redundancy; only VANILLA over-gathers",
                    )
            for tile in rank_plan.tiles:
                report.note_checked("transition_tiles")
                if tile.shard != training_shard(train, tile.source_rank):
                    report.add(
                        "SF701",
                        ERROR,
                        f"rank {rank}: tile from rank {tile.source_rank} is "
                        "not that rank's training shard",
                        location=where,
                        hint="gather tiles ship resting training shards "
                        "verbatim; re-derive the plan from the topology",
                    )
        return report

    def check_shipped(self, batch: int = 8) -> AnalysisReport:
        """Run the pass over every shipped example graph, merged."""
        merged = AnalysisReport("shapeflow")
        self.last_results = {}
        for name, rep in shipped_graph_reports(batch=batch, checker=self):
            self.last_results[name] = rep
            merged.merge(rep)
        return merged

    # -- internals ----------------------------------------------------------

    def _make_env(
        self,
        batch_size: Optional[int],
        prompt_length: Optional[int],
        max_new_tokens: Optional[int],
        max_seq_len: Optional[int],
        eos: bool,
        cfg: Any,
    ) -> _Env:
        if batch_size is None:
            batch_size = self.global_batch_size
        if self.mutate == "skew_batch" and batch_size is not None:
            batch_size += 1
        return _Env(
            B=Dim.const(batch_size) if batch_size is not None else Dim.sym("B"),
            P=(
                Dim.const(prompt_length)
                if prompt_length is not None
                else Dim.sym("P")
            ),
            R=(
                Dim.const(max_new_tokens)
                if max_new_tokens is not None
                else Dim.sym("R")
            ),
            T=Dim.sym("T"),
            group_size=getattr(cfg, "group_size", 1),
            eos=eos,
            max_seq_len=max_seq_len,
            prompt_length=prompt_length,
            max_new_tokens=max_new_tokens,
            updates_per_epoch=getattr(cfg, "updates_per_epoch", 1),
            recompute_log_probs=getattr(cfg, "recompute_log_probs", True),
        )

    def _bind(
        self, tokens: Sequence[str], env: _Env, bdim: Dim
    ) -> Tuple[Dim, ...]:
        dims: List[Dim] = []
        for token in tokens:
            if token.isdigit():
                dims.append(Dim.const(int(token)))
            elif token == "B":
                dims.append(bdim)
            elif token == "P":
                dims.append(env.P)
            elif token == "R":
                dims.append(env.R)
            elif token == "L":
                dims.append(env.P + env.R)
            elif token == "T":
                dims.append(env.T)
            elif token == "G":
                dims.append(Dim.const(env.group_size))
            else:  # unreachable: tokens validated at parse time
                raise ContractError(f"unknown dim symbol {token!r}")
        return tuple(dims)

    def _contract_of(
        self, facts: Dict[str, _RoleFacts], role: str, method: str
    ) -> Optional[Contract]:
        role_facts = facts.get(role)
        if role_facts is None:
            return None
        fn = getattr(role_facts.worker_cls, method, None)
        raw = registered_shape_contract(fn) if fn is not None else None
        if raw is None:
            return None
        try:
            return parse_contract(raw)
        except ContractError:
            return None

    def _walk(
        self,
        algo: Any,
        facts: Dict[str, _RoleFacts],
        env: _Env,
        report: AnalysisReport,
        staleness: int = 0,
    ) -> Dict[str, SymArray]:
        from repro.rlhf.core import AlgoType

        bdim = env.B
        if algo is AlgoType.GRPO:
            # GRPOTrainer repeats prompts group_size times *before* generate
            bdim = bdim * Dim.const(env.group_size)
            report.note_checked("grpo_group_repeat")
        flow: Dict[str, SymArray] = {
            "prompts": SymArray((bdim, env.P), "int64")
        }
        flow = self._call(
            facts, "actor", "generate_sequences", flow, bdim, env, report
        )
        self._post_generate(facts, env, flow, bdim, report)
        if algo is AlgoType.REMAX:
            # second, greedy rollout scored as the variance-reduction baseline
            baseline: Dict[str, SymArray] = {
                "prompts": SymArray((bdim, env.P), "int64")
            }
            baseline = self._call(
                facts,
                "actor",
                "generate_sequences",
                baseline,
                bdim,
                env,
                report,
            )
            baseline = self._call(
                facts, "reward", "compute_reward", baseline, bdim, env, report
            )
            if "scores" in baseline:
                flow["baseline_scores"] = baseline["scores"]
        if algo in (AlgoType.PPO, AlgoType.SAFE_RLHF):
            flow = self._call(
                facts, "critic", "compute_values", flow, bdim, env, report
            )
        if algo is AlgoType.SAFE_RLHF:
            flow = self._call(
                facts, "cost", "compute_cost", flow, bdim, env, report
            )
        flow = self._call(
            facts, "reference", "compute_ref_log_prob", flow, bdim, env, report
        )
        flow = self._call(
            facts, "reward", "compute_reward", flow, bdim, env, report
        )
        if env.recompute_log_probs:
            flow = self._call(
                facts, "actor", "compute_log_prob", flow, bdim, env, report
            )
        flow = self._advantages(algo, flow, bdim, env, report)
        if env.updates_per_epoch > 1:
            div = bdim.divisible_by(env.updates_per_epoch)
            if div is False:
                report.add(
                    "SF703",
                    ERROR,
                    f"_minibatches raises at runtime: batch {bdim.render()} "
                    f"is not divisible by "
                    f"updates_per_epoch={env.updates_per_epoch}",
                    location=f"{algo.value}.learning",
                    hint=SF_RULES["SF703"][1],
                )
            elif div is None:
                report.note_checked("deferred_batch_splits")
            else:
                report.note_checked("minibatch_splits")
        if staleness > 0:
            self._check_staleness(facts, flow, bdim, env, report, staleness)
        if (
            algo is AlgoType.GRPO
            and not env.tainted
            and "ref_log_probs" not in flow
        ):
            report.add(
                "SF701",
                ERROR,
                "the grpo loss reads ref_log_probs but the column never "
                "flows into the learning stage",
                location="grpo.learning",
                hint="keep ReferenceWorker.compute_ref_log_prob in the "
                "preparation stage",
            )
        if algo in (AlgoType.PPO, AlgoType.SAFE_RLHF):
            flow = self._call(
                facts, "critic", "update_critic", flow, bdim, env, report
            )
        flow = self._call(
            facts, "actor", "update_actor", flow, bdim, env, report
        )
        return flow

    def _call(
        self,
        facts_map: Dict[str, _RoleFacts],
        role: str,
        method: str,
        flow: Dict[str, SymArray],
        bdim: Dim,
        env: _Env,
        report: AnalysisReport,
    ) -> Dict[str, SymArray]:
        facts = facts_map.get(role)
        if facts is None:
            report.note_checked("skipped_roles")
            return flow
        location = f"{role}.{method}@{facts.pool}"
        fn = getattr(facts.worker_cls, method, None)
        raw = registered_shape_contract(fn) if fn is not None else None
        if (
            self.mutate == "forget_contract"
            and role == "actor"
            and method == "generate_sequences"
        ):
            raw = None
        if raw is None:
            report.add(
                "SF706",
                ERROR,
                f"{facts.worker_cls.__name__}.{method} has no "
                f"@shape_contract; the {role} boundary cannot be verified",
                location=location,
                hint=SF_RULES["SF706"][1],
            )
            env.tainted = True
            return flow
        try:
            contract = parse_contract(raw)
        except ContractError as exc:
            report.add(
                "SF706",
                ERROR,
                f"unsound contract on {facts.worker_cls.__name__}."
                f"{method}: {exc}",
                location=location,
                hint=SF_RULES["SF706"][1],
            )
            env.tainted = True
            return flow
        report.note_checked("contracts")
        self._check_split(facts, fn, bdim, report, location)
        for spec in contract.inputs:
            arr = flow.get(spec.name)
            if arr is None:
                if spec.optional:
                    continue
                if env.tainted:
                    report.note_checked("suppressed_by_taint")
                    continue
                report.add(
                    "SF701",
                    ERROR,
                    f"{role}.{method} expects column {spec.name!r} but the "
                    f"flow carries {sorted(flow)}",
                    location=location,
                    hint=SF_RULES["SF701"][1],
                )
                continue
            report.note_checked("boundary_columns")
            want = self._bind(spec.tokens, env, bdim)
            if arr.dims != want:
                report.add(
                    "SF701",
                    ERROR,
                    f"{role}.{method} input {spec.name!r}: flow has "
                    f"{_render_dims(arr.dims)}, contract wants "
                    f"{_render_dims(want)}",
                    location=location,
                    hint=SF_RULES["SF701"][1],
                )
            want_family = _family(spec.dtype)
            got_family = _family(arr.dtype)
            if want_family != got_family:
                if want_family == "int" and got_family == "float":
                    report.add(
                        "SF704",
                        ERROR,
                        f"{role}.{method} input {spec.name!r} declared "
                        f"{spec.dtype} arrives as {arr.dtype} — float64 "
                        "creep upstream",
                        location=location,
                        hint=SF_RULES["SF704"][1],
                    )
                else:
                    report.add(
                        "SF701",
                        ERROR,
                        f"{role}.{method} input {spec.name!r}: dtype family "
                        f"mismatch (contract {spec.dtype}, flow {arr.dtype})",
                        location=location,
                        hint=SF_RULES["SF701"][1],
                    )
        if contract.returns == "metrics":
            report.note_checked("metric_calls")
            return flow
        out: Dict[str, SymArray] = {}
        for spec in contract.outputs:
            if spec.optional and spec.name == "response_mask":
                if not env.eos:
                    continue
                if (
                    self.mutate == "drop_mask"
                    and method == "generate_sequences"
                ):
                    continue
            elif spec.optional:
                continue
            tokens = spec.tokens
            if (
                self.mutate == "widen_values"
                and role == "critic"
                and method == "compute_values"
                and spec.name == "values"
            ):
                tokens = ("B", "L")
            out[spec.name] = SymArray(
                self._bind(tokens, env, bdim), spec.dtype
            )
        self.call_outputs[(role, method)] = dict(out)
        if method == "generate_sequences":
            return out
        merged = dict(flow)
        merged.update(out)
        return merged

    def _check_split(
        self,
        facts: _RoleFacts,
        fn: Any,
        bdim: Dim,
        report: AnalysisReport,
        location: str,
    ) -> None:
        protocol_name = registered_protocol(fn)
        if protocol_name is None:
            return
        requires = get_protocol(protocol_name).requires
        degree = requires.split_degree(facts.parallel, facts.gen_config)
        if not degree or degree <= 1:
            return
        div = bdim.divisible_by(degree)
        if div is False:
            hint = SF_RULES["SF703"][1]
            if facts.use_serving:
                hint = (
                    "serving batches are variable-length: pad the submitted "
                    "prompt batch up to a multiple of the generation DP "
                    "degree, or lower micro_dp"
                )
            report.add(
                "SF703",
                ERROR,
                f"batch dim {bdim.render()} is not divisible by the "
                f"{protocol_name} split degree {degree}",
                location=location,
                hint=hint,
            )
        elif div is None:
            # symbolic batch (e.g. variable-length serving): divisibility is
            # deferred to runtime, not refuted — the DF102 generalization
            report.note_checked("deferred_batch_splits")
        else:
            report.note_checked("batch_splits")

    def _advantages(
        self,
        algo: Any,
        flow: Dict[str, SymArray],
        bdim: Dim,
        env: _Env,
        report: AnalysisReport,
    ) -> Dict[str, SymArray]:
        from repro.rlhf.core import AlgoType

        need = {
            AlgoType.PPO: (
                "values",
                "scores",
                "old_log_probs",
                "ref_log_probs",
            ),
            AlgoType.GRPO: ("scores",),
            AlgoType.REMAX: ("scores", "baseline_scores"),
            AlgoType.SAFE_RLHF: (
                "values",
                "cost_values",
                "scores",
                "costs",
            ),
        }[algo]
        for name in need:
            report.note_checked("advantage_inputs")
            if name not in flow:
                if env.tainted:
                    report.note_checked("suppressed_by_taint")
                    continue
                report.add(
                    "SF701",
                    ERROR,
                    f"compute_advantages({algo.value}) consumes {name!r} "
                    "which never flows out of the preparation stage",
                    location=f"{algo.value}.preparation",
                    hint=SF_RULES["SF701"][1],
                )
        flow = dict(flow)
        flow["advantages"] = SymArray((bdim, env.R), "float64")
        if algo in (AlgoType.PPO, AlgoType.SAFE_RLHF):
            flow["returns"] = SymArray((bdim, env.R), "float64")
        if algo is AlgoType.SAFE_RLHF:
            flow["cost_advantages"] = SymArray((bdim, env.R), "float64")
        return flow

    def _post_generate(
        self,
        facts: Dict[str, _RoleFacts],
        env: _Env,
        flow: Dict[str, SymArray],
        bdim: Dim,
        report: AnalysisReport,
    ) -> None:
        actor = facts.get("actor")
        pool = actor.pool if actor is not None else "?"
        if env.prompt_length is not None and env.max_new_tokens is not None:
            limit = env.max_seq_len
            if self.mutate == "shrink_ctx":
                limit = env.prompt_length
            if limit is not None:
                report.note_checked("context_budget")
                total = env.prompt_length + env.max_new_tokens
                if total > limit:
                    report.add(
                        "SF705",
                        ERROR,
                        f"prompt_length {env.prompt_length} + max_new_tokens "
                        f"{env.max_new_tokens} = {total} exceeds "
                        f"max_seq_len {limit}; generation overruns the "
                        "position table mid-iteration",
                        location=f"actor.generate_sequences@{pool}",
                        hint=SF_RULES["SF705"][1],
                    )
        if not env.tainted:
            report.note_checked("mask_consistency")
            mask = flow.get("response_mask")
            if env.eos and mask is None:
                report.add(
                    "SF702",
                    ERROR,
                    "eos_token_id is set but no response_mask column leaves "
                    "generate_sequences — losses and advantages would train "
                    "on post-EOS padding",
                    location=f"actor.generate_sequences@{pool}",
                    hint=SF_RULES["SF702"][1],
                )
            elif not env.eos and mask is not None:
                report.add(
                    "SF702",
                    ERROR,
                    "response_mask flows without an eos_token_id — nothing "
                    "defines where responses end",
                    location=f"actor.generate_sequences@{pool}",
                    hint=SF_RULES["SF702"][1],
                )
            elif mask is not None and mask.dims != (bdim, env.R):
                report.add(
                    "SF702",
                    ERROR,
                    f"response_mask has {_render_dims(mask.dims)}, want "
                    f"({bdim.render()}, {env.R.render()}) — one entry per "
                    "response token",
                    location=f"actor.generate_sequences@{pool}",
                    hint=SF_RULES["SF702"][1],
                )
        if actor is not None and actor.use_serving:
            self._check_serving(actor, env, flow, bdim, report)

    def _check_serving(
        self,
        actor: _RoleFacts,
        env: _Env,
        flow: Dict[str, SymArray],
        bdim: Dim,
        report: AnalysisReport,
    ) -> None:
        location = f"actor._serve_generate@{actor.pool}"
        report.note_checked("serving_reassembly")
        # reassembly pads variable-length responses into a fixed-width int64
        # matrix; a float pad buffer would promote the whole token matrix
        pad_dtype = "float64" if self.mutate == "promote_pad" else "int64"
        if _family(pad_dtype) != "int":
            report.add(
                "SF704",
                ERROR,
                "serving reassembly pads sequences with a float buffer; "
                "np.concatenate promotes the int64 token matrix to float64 "
                "across the serving boundary",
                location=location,
                hint=SF_RULES["SF704"][1],
            )
        else:
            report.note_checked("serving_pad_dtype")
        if (
            env.prompt_length is not None
            and env.max_new_tokens is not None
            and not env.tainted
        ):
            report.note_checked("serving_width")
            width = Dim.const(env.prompt_length + env.max_new_tokens)
            sequences = flow.get("sequences")
            if (
                sequences is not None
                and len(sequences.dims) == 2
                and sequences.dims[1] != width
            ):
                report.add(
                    "SF705",
                    ERROR,
                    f"serving reassembles to fixed width {width.render()} "
                    f"but the contract says sequences are "
                    f"{_render_dims(sequences.dims)}",
                    location=location,
                    hint=SF_RULES["SF705"][1],
                )
        # response_lengths are astype(int64) by construction; counted so a
        # regression shows up as a checked-count drop in the report
        report.note_checked("serving_lengths")

    def _check_staleness(
        self,
        facts: Dict[str, _RoleFacts],
        flow: Dict[str, SymArray],
        bdim: Dim,
        env: _Env,
        report: AnalysisReport,
        staleness: int,
    ) -> None:
        report.note_checked("stale_batches", staleness)
        flow["importance_weights"] = SymArray((bdim, env.R), "float64")
        contract = self._contract_of(facts, "actor", "update_actor")
        if contract is None:
            return  # SF706 already reported at the update_actor call
        declared = {spec.name for spec in contract.inputs}
        if "importance_weights" not in declared:
            report.add(
                "SF701",
                ERROR,
                "stale batches carry a per-token importance_weights column "
                "but update_actor's contract does not declare it",
                location="pipeline.update_actor",
                hint="add '?importance_weights': 'B,R' to the update "
                "contract so the off-policy correction reaches the loss",
            )
        else:
            report.note_checked("staleness_contract")


# ---------------------------------------------------------------------------
# shipped graphs and seeded mutants
# ---------------------------------------------------------------------------


def _tiny_plan(algo: Any) -> Any:
    """The cli's tiny example placement: 2-GPU main pool + 1-GPU reward."""
    from repro.config import GenParallelConfig, ParallelConfig
    from repro.rlhf.core import AlgoType
    from repro.runtime.placement import ModelAssignment, PlacementPlan
    from repro.runtime.builder import required_models

    par = ParallelConfig(pp=1, tp=2, dp=1)
    gen = GenParallelConfig.derive(par, 1, 1)
    assignments = {}
    for role in required_models(AlgoType(algo)):
        if role == "actor":
            assignments[role] = ModelAssignment("main", par, gen)
        elif role == "reward":
            assignments[role] = ModelAssignment(
                "r", _one_gpu_parallel()
            )
        else:
            assignments[role] = ModelAssignment("main", par)
    return PlacementPlan(
        pools={"main": 2, "r": 1}, assignments=assignments
    )


def _one_gpu_parallel() -> Any:
    from repro.config import ParallelConfig

    return ParallelConfig(pp=1, tp=1, dp=1)


def shipped_graph_reports(
    batch: int = 8,
    mutate: Optional[str] = None,
    checker: Optional[ShapeFlowChecker] = None,
) -> List[Tuple[str, AnalysisReport]]:
    """The SF pass over every shipped example graph, one report per graph.

    Covers the acceptance surface: the full PPO graph, GRPO, the
    serving-backed actor, the async one-step-off pipeline, and the
    train→gen transition geometry (both grouping modes, tiny + colocate).
    """
    from repro.config import GenParallelConfig, ParallelConfig
    from repro.parallel.topology import (
        GenGroupingMode,
        GenTopology,
        ParallelTopology,
    )
    from repro.pipeline import PipelineConfig
    from repro.rlhf.core import AlgoType

    chk = checker if checker is not None else ShapeFlowChecker(mutate=mutate)
    common = dict(
        batch_size=batch, prompt_length=4, max_new_tokens=6, max_seq_len=32
    )
    out: List[Tuple[str, AnalysisReport]] = []
    out.append(
        (
            "shapeflow[tiny-ppo]",
            chk.check_plan(
                AlgoType.PPO,
                _tiny_plan(AlgoType.PPO),
                function_rewards=("reward",),
                **common,
            ),
        )
    )
    out.append(
        (
            "shapeflow[grpo]",
            chk.check_plan(
                AlgoType.GRPO,
                _tiny_plan(AlgoType.GRPO),
                function_rewards=("reward",),
                **common,
            ),
        )
    )
    out.append(
        (
            "shapeflow[serving-ppo]",
            chk.check_plan(
                AlgoType.PPO,
                _tiny_plan(AlgoType.PPO),
                function_rewards=("reward",),
                eos_token_id=3,
                use_serving=True,
                **common,
            ),
        )
    )
    out.append(
        (
            "shapeflow[async-pipeline]",
            chk.check_pipeline(
                PipelineConfig(staleness_window=1),
                None,
                AlgoType.PPO,
                batch_size=batch,
            ),
        )
    )
    transition_report = AnalysisReport("shapeflow")
    grids = (
        (ParallelConfig(pp=1, tp=2, dp=1), 1, 1),
        (ParallelConfig(pp=1, tp=8, dp=2), 1, 2),
    )
    for par, gen_pp, gen_tp in grids:
        train = ParallelTopology(par)
        gen_cfg = GenParallelConfig.derive(par, gen_pp, gen_tp)
        for mode in (GenGroupingMode.HYBRIDFLOW, GenGroupingMode.VANILLA):
            chk.check_transition(
                GenTopology(train, gen_cfg, mode), report=transition_report
            )
    out.append(("shapeflow[transition]", transition_report))
    return out


def seeded_mutants() -> List[Tuple[ShapeFlowChecker, str]]:
    """(checker-with-one-flipped-guard, expected rule) pairs, one per rule.

    Each mutant's :meth:`ShapeFlowChecker.check_shipped` run must produce
    findings of *exactly* the expected rule — nothing else fires, and the
    unmutated checker stays clean (the PR-9 mutation-smoke contract).
    """
    return [
        (ShapeFlowChecker(mutate=name), rule)
        for name, rule in sorted(MUTATIONS.items())
    ]


# ---------------------------------------------------------------------------
# runtime shape recorder + static/dynamic cross-validation
# ---------------------------------------------------------------------------


class ShapeRecorder:
    """Samples real collected batch shapes during execution.

    Attach as ``controller.shape_recorder``; the worker-group dispatch
    records every collected :class:`DataBatch` (metrics dicts and futures
    are counted but not sampled).  Sampling is capped per call site so a
    long training run stays O(1) in memory.
    """

    def __init__(self, max_samples_per_call: int = 8) -> None:
        self.max_samples_per_call = max_samples_per_call
        #: (group, method) -> list of {column: (shape, dtype)} samples
        self.samples: Dict[
            Tuple[str, str], List[Dict[str, Tuple[Tuple[int, ...], str]]]
        ] = {}
        self.counts: Dict[Tuple[str, str], int] = {}
        self.skipped = 0

    def record(self, group_name: str, method_name: str, result: Any) -> None:
        from repro.data.batch import DataBatch

        if not isinstance(result, DataBatch):
            self.skipped += 1
            return
        key = (group_name, method_name)
        self.counts[key] = self.counts.get(key, 0) + 1
        bucket = self.samples.setdefault(key, [])
        if len(bucket) >= self.max_samples_per_call:
            return
        bucket.append(
            {
                name: (tuple(arr.shape), str(arr.dtype))
                for name, arr in result.tensors.items()
            }
        )


def predict_system_outputs(
    system: Any, batch_size: int, prompt_length: int
) -> Dict[Tuple[str, str], Dict[str, Tuple[Tuple[int, ...], str]]]:
    """Static per-call output shapes for a constructed system, fully concrete.

    The keys match :class:`ShapeRecorder` keys (group name == role name),
    so :func:`cross_validate` can line the two sides up directly.
    """
    checker = ShapeFlowChecker()
    checker.check_system(
        system, batch_size=batch_size, prompt_length=prompt_length
    )
    predictions: Dict[
        Tuple[str, str], Dict[str, Tuple[Tuple[int, ...], str]]
    ] = {}
    for key, columns in checker.call_outputs.items():
        concrete: Dict[str, Tuple[Tuple[int, ...], str]] = {}
        for name, arr in columns.items():
            shape = tuple(d.const_value() for d in arr.dims)
            if any(v is None for v in shape):
                continue  # under-bound dim: nothing concrete to compare
            concrete[name] = (shape, arr.dtype)
        predictions[key] = concrete
    return predictions


def cross_validate(
    recorder: ShapeRecorder,
    predictions: Dict[Tuple[str, str], Dict[str, Tuple[Tuple[int, ...], str]]],
    report: Optional[AnalysisReport] = None,
) -> AnalysisReport:
    """Compare recorded runtime shapes against the static inference.

    Only call sites present on *both* sides are compared: calls the
    recorder never saw (e.g. a reward group living under a different
    controller) are skipped, and unpredicted extra calls are counted.
    Shape mismatches are SF701; an int column observed as float is SF704.
    """
    report = report if report is not None else AnalysisReport("shapeflow")
    for key, samples in sorted(recorder.samples.items()):
        predicted = predictions.get(key)
        if predicted is None:
            report.note_checked("unpredicted_calls")
            continue
        group, method = key
        location = f"{group}.{method}[recorded]"
        for sample in samples:
            report.note_checked("recorded_samples")
            if set(sample) != set(predicted):
                report.add(
                    "SF701",
                    ERROR,
                    f"recorded columns {sorted(sample)} differ from the "
                    f"static prediction {sorted(predicted)}",
                    location=location,
                    hint=SF_RULES["SF701"][1],
                )
                continue
            for name, (shape, dtype) in sorted(predicted.items()):
                got_shape, got_dtype = sample[name]
                if got_shape != shape:
                    report.add(
                        "SF701",
                        ERROR,
                        f"column {name!r}: recorded shape {got_shape}, "
                        f"predicted {shape}",
                        location=location,
                        hint=SF_RULES["SF701"][1],
                    )
                elif _family(got_dtype) != _family(dtype):
                    if _family(dtype) == "int" and _family(got_dtype) == "float":
                        report.add(
                            "SF704",
                            ERROR,
                            f"column {name!r}: predicted {dtype} but "
                            f"recorded {got_dtype} — float64 creep on the "
                            "hot path",
                            location=location,
                            hint=SF_RULES["SF704"][1],
                        )
                    else:
                        report.add(
                            "SF701",
                            ERROR,
                            f"column {name!r}: recorded dtype {got_dtype}, "
                            f"predicted {dtype}",
                            location=location,
                            hint=SF_RULES["SF701"][1],
                        )
    for key in sorted(predictions):
        if key not in recorder.samples:
            report.note_checked("unsampled_predictions")
    return report


__all__ = [
    "SF_RULES",
    "MUTATIONS",
    "ContractError",
    "Dim",
    "SymArray",
    "ColumnSpec",
    "Contract",
    "parse_contract",
    "ProbeGroup",
    "predict_protocol_shapes",
    "ShapeFlowChecker",
    "shipped_graph_reports",
    "seeded_mutants",
    "ShapeRecorder",
    "predict_system_outputs",
    "cross_validate",
]
