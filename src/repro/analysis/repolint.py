"""Repo-specific lint: ``ast`` rules encoding invariants learned the hard way.

Every rule guards a reproducibility or reporting invariant this codebase
depends on:

========  ====================================================================
``RL301``  no unseeded ``np.random.*`` / ``random.*`` global-state calls —
           every stochastic path takes an explicit seeded ``Generator``
``RL302``  no wall-clock reads (``time.time()``, ``datetime.now()``...) in
           simulation code: all timing comes from the simulated clock
``RL303``  no ``==`` / ``!=`` against float literals — model and perf
           outputs compare with tolerances
``RL304``  ``json.dump(s)`` only in modules that import
           ``repro.serialization`` — reports route through ``json_safe``
``RL305``  no module-level state mutation (``global`` statements; worker
           methods mutating module-level containers)
``RL306``  no unused ``# repro-lint: ignore[...]`` comments — a suppression
           that silences nothing is a stale waiver (ruff's unused-noqa)
``RL307``  no direct iteration over ``set`` / ``frozenset`` / ``dict
           .values()`` in the protocol-feeding packages (``repro/pipeline``,
           ``repro/fleet``, ``repro/single_controller``) — hash/insertion
           order there is schedule order, and the MC6xx-verified protocols
           assume deterministic dispatch; iterate something sorted
``RL308``  no ``np.asarray`` / ``np.zeros`` / ``np.empty`` without an
           explicit ``dtype=`` in the numeric hot paths (``repro/models``,
           ``repro/serving``, the ``repro/rlhf`` loss/advantage core) —
           numpy's float64 default silently promotes int token buffers and
           hides int/float drift (the SF704 float64-creep companion)
========  ====================================================================

Suppression: append ``# repro-lint: ignore`` (all rules) or
``# repro-lint: ignore[RL301,RL305]`` to the flagged line.  ``conftest.py``
files are exempt from ``RL301`` — fixtures may own their seeding policy.
"""

from __future__ import annotations

import ast
import io
import pathlib
import re
import tokenize
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.report import ERROR, WARNING, AnalysisReport

ALL_RULES = (
    "RL301", "RL302", "RL303", "RL304", "RL305", "RL306", "RL307", "RL308",
)

#: Packages whose dispatch order feeds the concurrent protocols; iteration
#: order there must be deterministic (RL307).
_SCHEDULE_SCOPED = ("repro/pipeline", "repro/fleet", "repro/single_controller")

#: Numeric hot paths where an implicit array dtype is float64 creep waiting
#: to happen (RL308): model math, the serving engine, the RLHF loss core.
_HOTPATH_SCOPED = (
    "repro/models",
    "repro/serving",
    "repro/rlhf/losses",
    "repro/rlhf/advantage",
    "repro/rlhf/core",
)

#: numpy constructors whose dtype defaults promote silently (RL308).
_DTYPE_DEFAULTING = {"asarray", "zeros", "empty"}

#: Legacy numpy global-state RNG entry points (anything except the
#: ``default_rng`` / ``Generator`` family).
_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "PCG64"}
_STDLIB_RANDOM_OK = {"Random", "SystemRandom"}
_WALL_CLOCK = {
    ("time", "time"),
    ("time", "monotonic"),
    ("time", "perf_counter"),
    ("time", "process_time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}
_MUTATORS = {
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear",
}
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*ignore(?:\[([A-Z0-9,\s]+)\])?")


class _Suppressions:
    """Per-line rule suppressions parsed from source comments."""

    def __init__(self, source: str) -> None:
        self._by_line: Dict[int, Optional[Set[str]]] = {}
        #: Lines whose suppression actually silenced a finding (RL306).
        self._used: Set[int] = set()
        # real COMMENT tokens only — the marker spelled inside a string
        # literal (docs, hints) is not a suppression
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            comments = [
                (tok.start[0], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError, SyntaxError):
            comments = list(enumerate(source.splitlines(), start=1))
        for lineno, text in comments:
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            rules = match.group(1)
            self._by_line[lineno] = (
                {r.strip() for r in rules.split(",")} if rules else None
            )

    def suppressed(self, lineno: int, rule: str) -> bool:
        if lineno not in self._by_line:
            return False
        rules = self._by_line[lineno]
        if rules is None or rule in rules:
            self._used.add(lineno)
            return True
        return False

    def unused(self, active_rules: Set[str]) -> List[tuple]:
        """``(lineno, rules)`` of suppressions that silenced nothing.

        Only suppressions whose every listed rule was actually checked this
        run can be called unused — a partial-rule lint cannot tell whether
        ``ignore[RL302]`` would have fired under the full rule set.  Bare
        ``ignore`` comments need the whole catalog active for the same
        reason.
        """
        checkable = set(ALL_RULES) - {"RL306"}
        out = []
        for lineno, rules in sorted(self._by_line.items()):
            if lineno in self._used:
                continue
            required = checkable if rules is None else set(rules) & checkable
            if not required <= active_rules:
                continue
            out.append((lineno, rules))
        return out


class _LintVisitor(ast.NodeVisitor):
    def __init__(
        self,
        filename: str,
        report: AnalysisReport,
        rules: Set[str],
        suppressions: _Suppressions,
        is_conftest: bool,
    ) -> None:
        self.filename = filename
        self.report = report
        self.rules = rules
        self.suppressions = suppressions
        self.is_conftest = is_conftest
        #: import alias -> canonical module name ("np" -> "numpy")
        self.modules: Dict[str, str] = {}
        #: names bound by ``from X import Y`` -> "X.Y"
        self.from_imports: Dict[str, str] = {}
        self.imports_serialization = False
        self.module_level_names: Set[str] = set()
        self._class_stack: List[str] = []
        posix = filename.replace("\\", "/")
        self.schedule_scoped = any(p in posix for p in _SCHEDULE_SCOPED)
        self.hotpath_scoped = any(p in posix for p in _HOTPATH_SCOPED)

    # -- helpers ---------------------------------------------------------------------

    def _flag(
        self, rule: str, severity: str, node: ast.AST, message: str, hint: str
    ) -> None:
        lineno = getattr(node, "lineno", 0)
        if rule not in self.rules:
            return
        if self.suppressions.suppressed(lineno, rule):
            self.report.note_checked("suppressed")
            return
        self.report.add(
            rule, severity, message,
            location=f"{self.filename}:{lineno}", hint=hint,
        )

    def _dotted(self, node: ast.AST) -> Optional[List[str]]:
        """``np.random.seed`` -> ["numpy", "random", "seed"] (alias-resolved)."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        if root in self.modules:
            parts.append(self.modules[root])
        elif root in self.from_imports:
            parts.extend(reversed(self.from_imports[root].split(".")))
        else:
            parts.append(root)
        return list(reversed(parts))

    def _in_worker_class(self) -> bool:
        return any(name.endswith("Worker") for name in self._class_stack)

    # -- imports ---------------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.modules[alias.asname or alias.name.split(".")[0]] = alias.name
            if alias.name.startswith("repro.serialization"):
                self.imports_serialization = True
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            if node.module.startswith("repro.serialization"):
                self.imports_serialization = True
            for alias in node.names:
                self.from_imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    # -- rules -----------------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._dotted(node.func)
        if dotted:
            self._check_rng(node, dotted)
            self._check_wall_clock(node, dotted)
            self._check_json(node, dotted)
            self._check_dtype(node, dotted)
        self._check_module_mutation_call(node)
        self.generic_visit(node)

    def _check_rng(self, node: ast.Call, dotted: List[str]) -> None:
        if self.is_conftest:
            return
        if (
            len(dotted) >= 3
            and dotted[0] == "numpy"
            and dotted[1] == "random"
            and dotted[2] not in _NP_RANDOM_OK
        ):
            self._flag(
                "RL301", ERROR, node,
                f"global-state RNG call {'.'.join(dotted)}(); "
                "outputs depend on hidden interpreter state",
                hint="thread an explicit np.random.default_rng(seed) through",
            )
        if (
            len(dotted) == 2
            and dotted[0] == "random"
            and self.modules.get("random") == "random"
            and dotted[1] not in _STDLIB_RANDOM_OK
        ):
            self._flag(
                "RL301", ERROR, node,
                f"global-state RNG call random.{dotted[1]}()",
                hint="use a seeded random.Random(seed) instance",
            )

    def _check_wall_clock(self, node: ast.Call, dotted: List[str]) -> None:
        tail = tuple(dotted[-2:])
        if tail in _WALL_CLOCK and dotted[0] in ("time", "datetime"):
            self._flag(
                "RL302", ERROR, node,
                f"wall-clock read {'.'.join(dotted)}() in simulation code",
                hint=(
                    "simulated runs must be time-deterministic; read the "
                    "controller's SimClock instead"
                ),
            )

    def _check_json(self, node: ast.Call, dotted: List[str]) -> None:
        if self.imports_serialization:
            return
        if len(dotted) == 2 and dotted[0] == "json" and dotted[1] in (
            "dump", "dumps",
        ):
            self._flag(
                "RL304", ERROR, node,
                f"json.{dotted[1]}() in a module that never imports "
                "repro.serialization",
                hint=(
                    "route reports through json_safe (or an exporter that "
                    "does) so numpy scalars cannot leak into output"
                ),
            )

    def _check_dtype(self, node: ast.Call, dotted: List[str]) -> None:
        """Hot-path array constructors must pin their dtype (RL308)."""
        if not self.hotpath_scoped:
            return
        if (
            len(dotted) != 2
            or dotted[0] != "numpy"
            or dotted[1] not in _DTYPE_DEFAULTING
        ):
            return
        # dtype may also be passed as the second positional argument
        if len(node.args) >= 2:
            return
        if any(kw.arg == "dtype" for kw in node.keywords):
            return
        self._flag(
            "RL308", WARNING, node,
            f"np.{dotted[1]}() without an explicit dtype= on a numeric "
            "hot path",
            hint=(
                "pin dtype= at the array's birthplace (np.float64 for "
                "math, np.int64 for token ids) — numpy's defaults promote "
                "to float64 and hide int/float drift (SF704)"
            ),
        )

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            operands = [node.left, *node.comparators]
            for operand in operands:
                if (
                    isinstance(operand, ast.Constant)
                    and isinstance(operand.value, float)
                ):
                    self._flag(
                        "RL303", WARNING, node,
                        f"exact equality against float literal "
                        f"{operand.value!r}",
                        hint="compare with math.isclose / np.allclose",
                    )
                    break
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self._flag(
            "RL305", ERROR, node,
            f"mutates module-level state via 'global {', '.join(node.names)}'",
            hint="pass state explicitly or hold it on an object",
        )
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _check_module_mutation_call(self, node: ast.Call) -> None:
        """Worker methods mutating a module-level container (RL305)."""
        if not self._in_worker_class():
            return
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATORS
            and isinstance(func.value, ast.Name)
            and func.value.id in self.module_level_names
        ):
            self._flag(
                "RL305", ERROR, node,
                f"worker method mutates module-level {func.value.id!r} "
                f"via .{func.attr}()",
                hint=(
                    "workers are re-built on recovery; state they share "
                    "through the module survives and corrupts the rebuild"
                ),
            )

    def _unordered_iterable(self, node: ast.AST) -> Optional[str]:
        """What makes ``node`` a nondeterministically ordered iterable."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal"
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset")
            ):
                return f"{node.func.id}(...)"
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "values"
                and not node.args
                and not node.keywords
            ):
                return "a dict .values() view"
        return None

    def _check_unordered_iteration(self, node: ast.AST, iter_node: ast.AST
                                   ) -> None:
        if not self.schedule_scoped:
            return
        what = self._unordered_iterable(iter_node)
        if what is None:
            return
        self._flag(
            "RL307", WARNING, node,
            f"iteration over {what}: hash/insertion order here is "
            "schedule order feeding the concurrent protocols",
            hint=(
                "iterate a sorted() or otherwise deterministically "
                "ordered sequence so dispatch order cannot drift between "
                "runs"
            ),
        )

    def visit_For(self, node: ast.For) -> None:
        self._check_unordered_iteration(node, node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_unordered_iteration(node.iter, node.iter)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._in_worker_class():
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in self.module_level_names
                ):
                    self._flag(
                        "RL305", ERROR, node,
                        f"worker method writes into module-level "
                        f"{target.value.id!r}",
                        hint="hold per-worker state on the worker instance",
                    )
        self.generic_visit(node)


class RepoLint:
    """AST lint over a set of files or directories."""

    def __init__(self, rules: Iterable[str] = ALL_RULES) -> None:
        self.rules = set(rules)
        unknown = self.rules - set(ALL_RULES)
        if unknown:
            raise ValueError(f"unknown lint rules: {sorted(unknown)}")

    def lint_paths(self, paths: Iterable[str]) -> AnalysisReport:
        report = AnalysisReport("repolint")
        for path in paths:
            root = pathlib.Path(path)
            files = (
                sorted(root.rglob("*.py")) if root.is_dir() else [root]
            )
            for file in files:
                if "__pycache__" in file.parts:
                    continue
                self.lint_source(
                    file.read_text(), str(file), report
                )
        return report

    def lint_source(
        self, source: str, filename: str, report: AnalysisReport
    ) -> AnalysisReport:
        try:
            tree = ast.parse(source, filename=filename)
        except SyntaxError as exc:
            report.add(
                "RL300", ERROR, f"syntax error: {exc.msg}",
                location=f"{filename}:{exc.lineno or 0}",
                hint="fix the parse error first",
            )
            return report
        report.note_checked("files")
        suppressions = _Suppressions(source)
        visitor = _LintVisitor(
            filename=filename,
            report=report,
            rules=self.rules,
            suppressions=suppressions,
            is_conftest=pathlib.Path(filename).name == "conftest.py",
        )
        # collect module-level names first so method bodies can be checked
        # against them regardless of definition order
        for node in tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        visitor.module_level_names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                visitor.module_level_names.add(node.target.id)
        visitor.visit(tree)
        if "RL306" in self.rules:
            for lineno, rules in suppressions.unused(self.rules):
                what = (
                    "all rules" if rules is None else ", ".join(sorted(rules))
                )
                report.add(
                    "RL306", WARNING,
                    f"unused repro-lint suppression ({what}): nothing on "
                    "this line triggers the suppressed rule(s)",
                    location=f"{filename}:{lineno}",
                    hint="delete the stale '# repro-lint: ignore' comment",
                )
        return report
