"""State-machine model of the async one-step-off pipeline protocol.

Models the synchronization skeleton of :class:`~repro.pipeline.driver.
AsyncPipelineDriver` + :class:`~repro.pipeline.buffer.ExperienceBuffer` +
the double-buffered :class:`~repro.hybrid_engine.WeightPublisher` as two
concurrent threads:

* ``rollout`` — ``rollout.begin[i]`` acquires the newest *published* policy
  snapshot (the atomic staged→active flip at a generate-call boundary) and
  starts reading that snapshot buffer; ``rollout.end[i]`` finishes the
  generate call and puts the batch into experience slot ``i % capacity``.
* ``train`` — ``train.consume[j]`` pops batch ``j`` and runs the optimizer
  step; ``publish.begin[v]`` / ``publish.end[v]`` write the new weights
  into the *inactive* snapshot buffer and stage its version.

Guards (each individually droppable via ``mutate=`` for the seeded
mutation smoke):

* run-ahead: ``rollout.begin[i]`` requires ``i <= published + W`` — the
  staleness bound as the rollout engine enforces it
  (``drop_staleness_guard`` removes it);
* slot occupancy: the target experience slot must be free — the
  ``BufferFull`` guard (``skip_slot_guard`` removes it);
* acquire: the begin flips active to staged (``skip_acquire`` leaves the
  engine decoding an outdated snapshot);
* publish targeting: publication writes ``1 - active``, never the buffer
  the decode loop reads (``publish_into_active`` inverts it).

Invariants checked (MC6xx rules are catalogued in
:mod:`repro.analysis.modelcheck`): staleness never exceeds ``W`` (MC603),
no experience batch lost / overwritten / double-consumed (MC604), snapshot
buffers never written while readable (MC605), an acquire never returns an
outdated version while a newer one is staged (MC606).
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple

from repro.analysis.protocols.core import Action, ProtocolModel

_MUTATIONS = (
    "drop_staleness_guard",
    "skip_slot_guard",
    "skip_acquire",
    "publish_into_active",
)


class PipelineState(NamedTuple):
    ngen: int  # next rollout index to begin
    inflight: Optional[Tuple[int, int, int]]  # (index, buf, version) decoding
    trained: int  # optimizer steps completed
    tphase: int  # 0 = consume next, 1 = publish.begin next, 2 = publish.end
    wbuf: int  # snapshot buffer mid-publication (-1 when idle)
    slots: Tuple[Optional[Tuple[int, int]], ...]  # (index, version) per slot
    bufs: Tuple[int, int]  # policy version held by each snapshot buffer
    active: int  # buffer the decode loop reads
    staged: int  # buffer holding the newest published version
    viol: Tuple[Tuple[str, str], ...]


class AsyncPipelineModel(ProtocolModel):
    """Bounded-staleness producer/consumer with double-buffered weights."""

    def __init__(
        self,
        n_iterations: int = 4,
        window: int = 1,
        capacity: Optional[int] = None,
        mutate: Optional[str] = None,
    ) -> None:
        if mutate is not None and mutate not in _MUTATIONS:
            raise ValueError(
                f"unknown pipeline mutation {mutate!r}; have {_MUTATIONS}"
            )
        self.n = n_iterations
        self.window = window
        self.capacity = capacity if capacity is not None else window + 1
        self.mutate = mutate
        suffix = f"!{mutate}" if mutate else ""
        self.name = (
            f"async-pipeline[w{window},c{self.capacity},n{n_iterations}]"
            f"{suffix}"
        )
    def tag_capacity(self, tag: str):
        # The protocol's two ledger contracts: at most W + 1 rollouts may
        # begin ahead of the newest published version, and each physical
        # buffer slot holds at most one unconsumed batch.
        if tag == "ahead":
            return self.window + 1
        if tag.startswith("slot"):
            return 1
        return None

    def initial_state(self) -> PipelineState:
        return PipelineState(
            ngen=0,
            inflight=None,
            trained=0,
            tphase=0,
            wbuf=-1,
            slots=(None,) * self.capacity,
            bufs=(0, 0),
            active=0,
            staged=0,
            viol=(),
        )

    # -- transitions -------------------------------------------------------------------

    def enabled(self, state: PipelineState) -> List[Action]:
        actions: List[Action] = []
        s = state
        # rollout thread
        if s.inflight is None and s.ngen < self.n:
            i = s.ngen
            k = i % self.capacity
            published = s.bufs[s.staged]
            ahead_ok = (
                self.mutate == "drop_staleness_guard"
                or i <= published + self.window
            )
            slot_ok = self.mutate == "skip_slot_guard" or s.slots[k] is None
            if ahead_ok and slot_ok:
                b = s.active if self.mutate == "skip_acquire" else s.staged
                actions.append(
                    Action(
                        name=f"rollout.begin[{i}]",
                        thread="rollout",
                        reads=(f"buf{b}",),
                        ctrl_reads=("trained", "staged", f"slot{k}"),
                        ctrl_writes=("active",),
                        syncs=(f"pub.b{b}", f"slot{k}.free"),
                        releases=(
                            ()
                            if self.mutate == "skip_acquire"
                            else (f"flipaway.b{1 - b}",)
                        ),
                        allocs=(("ahead", 1),),
                    )
                )
        if s.inflight is not None:
            i, b, _version = s.inflight
            k = i % self.capacity
            actions.append(
                Action(
                    name=f"rollout.end[{i}]",
                    thread="rollout",
                    reads=(f"buf{b}",),
                    writes=(f"slot{k}",),
                    releases=(f"exp{i}",),
                    allocs=((f"slot{k}", 1),),
                )
            )
        # train thread
        j = s.trained
        if s.tphase == 0 and j < self.n:
            k = j % self.capacity
            entry = s.slots[k]
            if entry is not None and entry[0] == j:
                actions.append(
                    Action(
                        name=f"train.consume[{j}]",
                        thread="train",
                        reads=(f"slot{k}",),
                        writes=(f"slot{k}",),
                        ctrl_writes=("trained",),
                        syncs=(f"exp{j}",),
                        releases=(f"slot{k}.free",),
                        frees=((f"slot{k}", 1),),
                    )
                )
        elif s.tphase == 1:
            v = s.trained
            target = (
                s.active
                if self.mutate == "publish_into_active"
                else 1 - s.active
            )
            actions.append(
                Action(
                    name=f"publish.begin[{v}]",
                    thread="train",
                    writes=(f"buf{target}",),
                    ctrl_reads=("active",),
                    syncs=(f"flipaway.b{target}",),
                )
            )
        elif s.tphase == 2:
            v = s.trained
            actions.append(
                Action(
                    name=f"publish.end[{v}]",
                    thread="train",
                    writes=(f"buf{s.wbuf}",),
                    ctrl_writes=("staged",),
                    releases=(f"pub.b{s.wbuf}",),
                    frees=(("ahead", 1),),
                )
            )
        return actions

    def apply(self, state: PipelineState, action: Action) -> PipelineState:
        s = state
        name = action.name
        if name.startswith("rollout.begin"):
            i = s.ngen
            viol = s.viol
            if self.mutate == "skip_acquire":
                b = s.active
            else:
                b = s.staged
            version = s.bufs[b]
            staged_version = s.bufs[s.staged]
            if staged_version > version:
                viol = viol + (
                    (
                        "MC606",
                        f"rollout {i} decodes version {version} while "
                        f"version {staged_version} is already staged — the "
                        "publication was lost at the acquire boundary",
                    ),
                )
            return s._replace(
                inflight=(i, b, version), active=b, viol=viol
            )
        if name.startswith("rollout.end"):
            i, _b, version = s.inflight
            k = i % self.capacity
            viol = s.viol
            if s.slots[k] is not None:
                old_index, _old_version = s.slots[k]
                viol = viol + (
                    (
                        "MC604",
                        f"rollout {i} overwrote slot {k} holding the "
                        f"unconsumed batch {old_index} — experience lost",
                    ),
                )
            slots = list(s.slots)
            slots[k] = (i, version)
            return s._replace(
                ngen=i + 1, inflight=None, slots=tuple(slots), viol=viol
            )
        if name.startswith("train.consume"):
            j = s.trained
            k = j % self.capacity
            index, version = s.slots[k]
            viol = s.viol
            staleness = j - version
            if staleness > self.window:
                viol = viol + (
                    (
                        "MC603",
                        f"batch {j} trained at staleness {staleness} "
                        f"(behaviour version {version}), exceeding the "
                        f"bound W={self.window}",
                    ),
                )
            slots = list(s.slots)
            slots[k] = None
            return s._replace(
                trained=j + 1, tphase=1, slots=tuple(slots), viol=viol
            )
        if name.startswith("publish.begin"):
            target = (
                s.active
                if self.mutate == "publish_into_active"
                else 1 - s.active
            )
            viol = s.viol
            # the invariant is "never written while readable": flag when a
            # decode is actually mid-read of the buffer being written (so
            # the counterexample replays into a concrete RC501 race)
            if (
                target == s.active
                and s.inflight is not None
                and s.inflight[1] == target
            ):
                viol = viol + (
                    (
                        "MC605",
                        f"version {s.trained} is published into snapshot "
                        f"buffer b{target} while rollout {s.inflight[0]} "
                        "reads it mid-decode — a torn weight read",
                    ),
                )
            return s._replace(tphase=2, wbuf=target, viol=viol)
        if name.startswith("publish.end"):
            bufs = list(s.bufs)
            bufs[s.wbuf] = s.trained
            return s._replace(
                tphase=0, wbuf=-1, bufs=tuple(bufs), staged=s.wbuf
            )
        raise ValueError(f"unknown action {name!r}")

    def is_terminal(self, state: PipelineState) -> bool:
        return (
            state.trained == self.n
            and state.tphase == 0
            and state.ngen == self.n
            and state.inflight is None
        )

    def final_violations(
        self, state: PipelineState
    ) -> Tuple[Tuple[str, str], ...]:
        out = []
        for k, entry in enumerate(state.slots):
            if entry is not None:
                out.append(
                    (
                        "MC604",
                        f"batch {entry[0]} still buffered in slot {k} at "
                        "run end — generated but never consumed",
                    )
                )
        return tuple(out)


__all__ = ["AsyncPipelineModel", "PipelineState"]
