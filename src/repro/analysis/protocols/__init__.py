"""Explicit state-machine models of the shipped concurrent protocols.

These are the inputs to the MC6xx bounded model checker
(:mod:`repro.analysis.modelcheck`).  Each model captures just the
synchronization skeleton of a real component and is kept honest by
conformance tests replaying real-implementation traces through
:meth:`~repro.analysis.protocols.core.ProtocolModel.run_schedule`.
"""

from repro.analysis.protocols.core import (
    Action,
    ProtocolModel,
    ReplayDevice,
    independent,
    replay_schedule,
)
from repro.analysis.protocols.fleet_model import (
    FleetGangModel,
    FleetState,
    JobSpec,
    JobState,
)
from repro.analysis.protocols.pipeline_model import (
    AsyncPipelineModel,
    PipelineState,
)
from repro.analysis.protocols.serving_model import (
    DrainHandoffModel,
    ServingState,
)

__all__ = [
    "Action",
    "AsyncPipelineModel",
    "DrainHandoffModel",
    "FleetGangModel",
    "FleetState",
    "JobSpec",
    "JobState",
    "PipelineState",
    "ProtocolModel",
    "ReplayDevice",
    "ServingState",
    "independent",
    "replay_schedule",
]
