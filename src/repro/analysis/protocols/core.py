"""Explicit state-machine models of the shipped concurrent protocols.

The RC5xx race detector audits the one schedule that happened to run; the
MC6xx model checker (:mod:`repro.analysis.modelcheck`) explores *every*
small-scope interleaving of these models instead.  A model is deliberately
tiny — just the synchronization skeleton of the real component — but it is
kept honest two ways:

* conformance tests replay real-implementation traces through the model
  (every op the real code performs must be an enabled model action), and
* counterexample schedules replay *out* of the model into the existing
  validators (:func:`replay_schedule` emits trace records, access events,
  and a synthetic ledger device for RaceDetector / TraceAuditor).

Each :class:`Action` therefore carries two kinds of footprint:

* ``reads`` / ``writes`` — *data* resources (buffers, slots, device state).
  These become access-log events on replay; a mutant that drops a guard
  turns into a vector-clock race on exactly these resources.
* ``ctrl_reads`` / ``ctrl_writes`` — *control* state the action's guard or
  effect touches (pointers, counters, statuses).  Control state is what the
  real protocol reads under its own synchronization (an atomic pointer
  flip, the controller's sequential context), so it is excluded from the
  replayed access log — but it MUST be declared, because the checker's
  partial-order reduction may only commute actions whose full footprints
  are disjoint.  Undeclared control state would let the reduction prune a
  schedule that actually behaves differently.

``syncs`` / ``releases`` are named tokens modelling the happens-before
edges the real protocol leaves in the trace (future/lineage deps, the
publisher hand-off, device free/claim).  On replay, an action's record
depends on the record that last released each token it syncs on.

``allocs`` / ``frees`` charge a synthetic memory ledger whose per-tag
capacities are the protocol's *contract* (at most ``W + 1`` in-flight
rollouts, one batch per buffer slot, one gang per device).  A mutant that
silently exceeds the contract — or frees what was never allocated — shows
up as a ``TA205`` negative balance when the counterexample is replayed
through :class:`~repro.analysis.trace_audit.TraceAuditor`.
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional, Tuple


class Action(NamedTuple):
    """One enabled transition of a protocol model."""

    name: str
    thread: str
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()
    ctrl_reads: Tuple[str, ...] = ()
    ctrl_writes: Tuple[str, ...] = ()
    syncs: Tuple[str, ...] = ()
    releases: Tuple[str, ...] = ()
    allocs: Tuple[Tuple[str, int], ...] = ()
    frees: Tuple[Tuple[str, int], ...] = ()


def independent(a: Action, b: Action) -> bool:
    """Conservative Mazurkiewicz independence: may the checker commute them?

    Same-thread actions are program-ordered, never independent.  Otherwise
    the *full* footprints (data + control + sync tokens + ledger tags) must
    be disjoint — any overlap could change the other action's guard,
    effect, or ordering, so the pair must be explored in both orders.
    """
    if a.thread == b.thread:
        return False
    a_writes = set(a.writes) | set(a.ctrl_writes)
    b_writes = set(b.writes) | set(b.ctrl_writes)
    a_touch = a_writes | set(a.reads) | set(a.ctrl_reads)
    b_touch = b_writes | set(b.reads) | set(b.ctrl_reads)
    if (a_writes & b_touch) or (b_writes & a_touch):
        return False
    if set(a.releases) & set(b.syncs) or set(b.releases) & set(a.syncs):
        return False
    a_tags = {tag for tag, _ in a.allocs} | {tag for tag, _ in a.frees}
    b_tags = {tag for tag, _ in b.allocs} | {tag for tag, _ in b.frees}
    if a_tags & b_tags:
        return False
    return True


class ProtocolModel:
    """Base class: a finite, deterministic-per-action state machine.

    States are hashable values (nested tuples / NamedTuples).  ``apply``
    is pure — it returns a new state and never mutates.  A state records
    protocol-invariant violations in its ``viol`` field (a tuple of
    ``(rule, message)`` pairs); the checker treats a violating state as a
    frontier and reports each rule once with its schedule.
    """

    #: Short stable name; counterexample locations are ``model:<name>``.
    name = "protocol"

    def tag_capacity(self, tag: str) -> Optional[int]:
        """Contract capacity of a replay-ledger tag (None = unbounded)."""
        return None

    def initial_state(self) -> Any:
        raise NotImplementedError

    def enabled(self, state: Any) -> List[Action]:
        """All actions the protocol allows from ``state``, in a fixed order."""
        raise NotImplementedError

    def apply(self, state: Any, action: Action) -> Any:
        raise NotImplementedError

    def is_terminal(self, state: Any) -> bool:
        """True when the protocol has run to a legitimate quiescent end."""
        raise NotImplementedError

    def state_violations(self, state: Any) -> Tuple[Tuple[str, str], ...]:
        return tuple(getattr(state, "viol", ()))

    def final_violations(self, state: Any) -> Tuple[Tuple[str, str], ...]:
        """Violations only a finished run exhibits (lost work, leaks)."""
        return ()

    # -- shared helpers ----------------------------------------------------------------

    def run_schedule(self, schedule: List[str]) -> Any:
        """Re-execute a schedule of action names; returns the final state.

        Raises ``ValueError`` if any step names an action the model does
        not enable at that point — the conformance guarantee that a
        counterexample (or a real-implementation trace mapped to action
        names) is an actual behaviour of the model.
        """
        state = self.initial_state()
        for i, name in enumerate(schedule):
            action = self.action_named(state, name)
            if action is None:
                have = [a.name for a in self.enabled(state)]
                raise ValueError(
                    f"{self.name}: step {i} action {name!r} not enabled "
                    f"(enabled: {have})"
                )
            state = self.apply(state, action)
        return state

    def action_named(self, state: Any, name: str) -> Optional[Action]:
        for action in self.enabled(state):
            if action.name == name:
                return action
        return None


class _LedgerEvent(NamedTuple):
    op: str
    tag: str
    nbytes: int
    balance: int


class _ReplayMemory:
    """Duck-typed device memory for TraceAuditor's ledger audit.

    ``balance`` after each event is the most negative of (remaining
    per-tag contract headroom, the tag's outstanding allocation) — so
    both over-subscription (allocating past the protocol's contract) and
    a free-without-alloc surface as ``TA205``.
    """

    def __init__(self, cap_fn) -> None:
        self.cap_fn = cap_fn
        self.events: List[_LedgerEvent] = []
        self.ever_allocated: set = set()
        self._tags: Dict[str, int] = {}

    def _balance(self, tag: str) -> int:
        outstanding = self._tags.get(tag, 0)
        cap = self.cap_fn(tag)
        if cap is None:
            return outstanding
        return min(outstanding, cap - outstanding)

    def alloc(self, tag: str, n: int) -> None:
        self._tags[tag] = self._tags.get(tag, 0) + n
        self.ever_allocated.add(tag)
        self.events.append(_LedgerEvent("alloc", tag, n, self._balance(tag)))

    def free(self, tag: str, n: int) -> None:
        self._tags[tag] = self._tags.get(tag, 0) - n
        self.events.append(_LedgerEvent("free", tag, n, self._balance(tag)))

    def tags(self) -> List[Tuple[str, int]]:
        return sorted(self._tags.items())


class ReplayDevice:
    """Synthetic device carrying the replayed protocol ledger."""

    def __init__(self, model: "ProtocolModel") -> None:
        self.global_rank = 0
        self.model_name = model.name
        self.busy_time = 0.0
        self.memory = _ReplayMemory(model.tag_capacity)


class _ReplayRecord:
    """ExecutionRecord-shaped row for the RaceDetector."""

    __slots__ = ("seq", "pool", "group", "method", "deps")

    def __init__(
        self, seq: int, pool: str, group: str, method: str,
        deps: Tuple[int, ...],
    ) -> None:
        self.seq = seq
        self.pool = pool
        self.group = group
        self.method = method
        self.deps = deps


def replay_schedule(model: ProtocolModel, schedule: List[str]):
    """Re-execute ``schedule`` and emit validator-shaped artifacts.

    Returns ``(records, events, device)``:

    * ``records`` — one ExecutionRecord-shaped entry per action; ``pool``
      is the action's thread, ``deps`` are the records that last released
      each token the action syncs on (the protocol's happens-before edges).
    * ``events`` — one :class:`AccessEvent` per declared *data* access.
    * ``device`` — a :class:`ReplayDevice` whose ledger was charged by the
      actions' ``allocs`` / ``frees`` against the model's contract.

    Feeding these to :class:`~repro.analysis.races.RaceDetector` /
    :class:`~repro.analysis.trace_audit.TraceAuditor` cross-validates a
    counterexample with the shipped dynamic analyses: an intact protocol's
    schedules replay clean, a dropped guard shows up as RC501 / TA205.
    """
    from repro.single_controller.access_log import READ, WRITE, AccessEvent

    state = model.initial_state()
    records: List[_ReplayRecord] = []
    events: List[Any] = []
    device = ReplayDevice(model)
    released_at: Dict[str, int] = {}
    for seq, name in enumerate(schedule):
        action = model.action_named(state, name)
        if action is None:
            have = [a.name for a in model.enabled(state)]
            raise ValueError(
                f"{model.name}: replay step {seq} action {name!r} not "
                f"enabled (enabled: {have})"
            )
        deps = tuple(
            sorted(
                {
                    released_at[token]
                    for token in action.syncs
                    if token in released_at
                }
            )
        )
        records.append(
            _ReplayRecord(seq, action.thread, model.name, action.name, deps)
        )
        for resource in action.reads:
            events.append(
                AccessEvent(
                    kind=READ,
                    resource=f"{model.name}/{resource}",
                    rank=0,
                    seq=seq,
                    after_seq=seq,
                    note=action.name,
                )
            )
        for resource in action.writes:
            events.append(
                AccessEvent(
                    kind=WRITE,
                    resource=f"{model.name}/{resource}",
                    rank=0,
                    seq=seq,
                    after_seq=seq,
                    note=action.name,
                )
            )
        for tag, n in action.allocs:
            device.memory.alloc(tag, n)
        for tag, n in action.frees:
            device.memory.free(tag, n)
        for token in action.releases:
            released_at[token] = seq
        state = model.apply(state, action)
    return records, events, device


__all__ = [
    "Action",
    "ProtocolModel",
    "ReplayDevice",
    "independent",
    "replay_schedule",
]
