"""State-machine model of the fleet gang admission / preemption protocol.

Threads: one ``sched`` thread for the controller-side actions (gang
admission, preemption, fault injection, recovery, give-up) and one
``job.<name>`` thread per job for its training steps.  Mirrors
:class:`~repro.fleet.scheduler.FleetScheduler`'s tick loop: eligible
pending jobs admit highest-priority-first onto free devices as an atomic
gang, a waiter that cannot fit may evict strictly-lower-priority victims
(weakest first, only when evicting could ever make it fit), device faults
requeue the holder from its last checkpoint, and a job whose gang can
never fit the surviving capacity fails instead of waiting forever.

Mutations for the seeded mutation smoke:

* ``drop_gang_guard`` — admission grants the first ``need`` *alive*
  devices without checking holders: two gangs overlap (MC607) and the
  replayed ledger over-subscribes the GPU contract (TA205).
* ``skip_checkpoint_on_preempt`` — preemption evicts without saving
  progress; the victim resumes below its preemption point (MC608).
* ``allow_equal_priority_preempt`` — equal-priority jobs evict each other
  forever: the checker revisits an identical state on the DFS path (MC602).
* ``drop_giveup`` — a gang larger than the surviving capacity waits
  forever after a fault: terminal starvation, reported as MC601 deadlock.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple

from repro.analysis.protocols.core import Action, ProtocolModel

_MUTATIONS = (
    "drop_gang_guard",
    "skip_checkpoint_on_preempt",
    "allow_equal_priority_preempt",
    "drop_giveup",
)

_UNARRIVED = "N"
_PENDING = "P"
_RUNNING = "R"
_COMPLETED = "C"
_FAILED = "F"
_FAULTED = "X"


class JobSpec(NamedTuple):
    name: str
    priority: int
    need: int
    iterations: int
    arrival: int = 0  # jobs with arrival > 0 join the queue later


class JobState(NamedTuple):
    status: str
    iters: int
    ckpt: int
    devs: Tuple[int, ...]
    pre: int  # iters at last preemption, -1 when not preempted


class FleetState(NamedTuple):
    jobs: Tuple[JobState, ...]
    alive: Tuple[int, ...]
    free: Tuple[int, ...]
    kills_done: int
    viol: Tuple[Tuple[str, str], ...]


class FleetGangModel(ProtocolModel):
    """Gang admission, priority preemption, and fault recovery."""

    def __init__(
        self,
        jobs: Tuple[JobSpec, ...] = (
            JobSpec("a", 2, 2, 2),
            JobSpec("b", 1, 2, 1),
        ),
        capacity: int = 2,
        kills: Tuple[int, ...] = (),
        preemption: bool = True,
        mutate: Optional[str] = None,
    ) -> None:
        if mutate is not None and mutate not in _MUTATIONS:
            raise ValueError(
                f"unknown fleet mutation {mutate!r}; have {_MUTATIONS}"
            )
        self.jobs = tuple(JobSpec(*j) for j in jobs)
        self.capacity = capacity
        self.kills = tuple(kills)
        self.preemption = preemption
        self.mutate = mutate
        suffix = f"!{mutate}" if mutate else ""
        spec = ",".join(
            f"{j.name}:p{j.priority}n{j.need}i{j.iterations}"
            + (f"a{j.arrival}" if j.arrival else "")
            for j in self.jobs
        )
        self.name = (
            f"fleet-gang[{spec};c{capacity},k{len(self.kills)}]{suffix}"
        )

    def tag_capacity(self, tag: str):
        # Contract: a device belongs to at most one admitted gang.
        if tag.startswith("gpu"):
            return 1
        return None

    def initial_state(self) -> FleetState:
        return FleetState(
            jobs=tuple(
                JobState(
                    _UNARRIVED if spec.arrival > 0 else _PENDING,
                    0, 0, (), -1,
                )
                for spec in self.jobs
            ),
            alive=tuple(range(self.capacity)),
            free=tuple(range(self.capacity)),
            kills_done=0,
            viol=(),
        )

    # -- helpers -----------------------------------------------------------------------

    def _grant(self, state: FleetState, spec: JobSpec) -> Tuple[int, ...]:
        if self.mutate == "drop_gang_guard":
            return state.alive[: spec.need]
        return state.free[: spec.need]

    def _fits(self, state: FleetState, spec: JobSpec) -> bool:
        if self.mutate == "drop_gang_guard":
            return spec.need <= len(state.alive)
        return spec.need <= len(state.free)

    # -- transitions -------------------------------------------------------------------

    def enabled(self, state: FleetState) -> List[Action]:
        actions: List[Action] = []
        s = state
        pending = [
            (spec, js)
            for spec, js in zip(self.jobs, s.jobs)
            if js.status == _PENDING
        ]
        st_vars = tuple(f"st.{spec.name}" for spec in self.jobs)
        # sched: late arrivals join the queue in arrival order
        unarrived = [
            (spec.arrival, spec.name)
            for spec, js in zip(self.jobs, s.jobs)
            if js.status == _UNARRIVED
        ]
        if unarrived:
            _a, jname = min(unarrived)
            actions.append(
                Action(
                    name=f"arrive[{jname}]",
                    thread="sched",
                    ctrl_writes=(f"st.{jname}",),
                )
            )
        # sched: gang admission, highest-priority fitting waiter first
        for spec, js in pending:
            if not self._fits(s, spec):
                continue
            blocked = any(
                other.priority > spec.priority and self._fits(s, other)
                for other, _ojs in pending
                if other.name != spec.name
            )
            if blocked:
                continue
            granted = self._grant(s, spec)
            actions.append(
                Action(
                    name=f"admit[{spec.name}]",
                    thread="sched",
                    writes=tuple(f"gpu{d}" for d in granted),
                    ctrl_reads=("free", "alive") + st_vars,
                    ctrl_writes=(f"st.{spec.name}", "free"),
                    syncs=tuple(f"dev{d}" for d in granted),
                    releases=(f"run.{spec.name}",),
                    allocs=tuple((f"gpu{d}", 1) for d in granted),
                )
            )
        # sched: preemption on behalf of a waiter that cannot fit
        if self.preemption:
            strict = self.mutate != "allow_equal_priority_preempt"
            for spec, js in pending:
                if self._fits(s, spec):
                    continue
                victims = [
                    (vspec, vjs)
                    for vspec, vjs in zip(self.jobs, s.jobs)
                    if vjs.status == _RUNNING
                    and (
                        vspec.priority < spec.priority
                        if strict
                        else vspec.priority <= spec.priority
                    )
                ]
                if not victims:
                    continue
                # evict the weakest victims, atomically, until the waiter
                # fits — mirroring _preempt_for's all-or-nothing eviction
                # (one-victim-at-a-time would let a victim re-admit
                # between evictions and livelock the waiter)
                victims.sort(key=lambda v: (v[0].priority, v[0].name))
                chosen = []
                reclaimed = len(s.free)
                for vspec, vjs in victims:
                    if reclaimed >= spec.need:
                        break
                    chosen.append((vspec, vjs))
                    reclaimed += len(vjs.devs)
                if reclaimed < spec.need:
                    continue
                vnames = ",".join(vspec.name for vspec, _ in chosen)
                vdevs = tuple(
                    d for _vspec, vjs in chosen for d in vjs.devs
                )
                actions.append(
                    Action(
                        name=f"preempt[{spec.name}->{vnames}]",
                        thread="sched",
                        ctrl_reads=("free",) + st_vars,
                        ctrl_writes=tuple(
                            f"st.{vspec.name}" for vspec, _ in chosen
                        )
                        + ("free",),
                        syncs=tuple(
                            tok
                            for vspec, _ in chosen
                            for tok in (
                                f"step.{vspec.name}",
                                f"run.{vspec.name}",
                            )
                        ),
                        releases=tuple(f"dev{d}" for d in vdevs),
                        frees=tuple((f"gpu{d}", 1) for d in vdevs),
                    )
                )
        # sched: the next scripted device fault
        if s.kills_done < len(self.kills):
            d = self.kills[s.kills_done]
            actions.append(
                Action(
                    name=f"kill[{d}]",
                    thread="sched",
                    ctrl_writes=("alive", "free") + st_vars,
                )
            )
        # sched: requeue a faulted job (release surviving devices)
        for spec, js in zip(self.jobs, s.jobs):
            if js.status == _FAULTED:
                survivors = tuple(d for d in js.devs if d in s.alive)
                actions.append(
                    Action(
                        name=f"recover[{spec.name}]",
                        thread="sched",
                        ctrl_writes=(f"st.{spec.name}", "free"),
                        syncs=(f"step.{spec.name}", f"run.{spec.name}"),
                        releases=tuple(f"dev{d}" for d in survivors),
                        frees=tuple((f"gpu{d}", 1) for d in js.devs),
                    )
                )
        # sched: fail a gang that can never fit the surviving capacity
        if self.mutate != "drop_giveup":
            for spec, js in pending:
                if spec.need > len(s.alive):
                    actions.append(
                        Action(
                            name=f"giveup[{spec.name}]",
                            thread="sched",
                            ctrl_reads=("alive",),
                            ctrl_writes=(f"st.{spec.name}",),
                        )
                    )
        # job threads: one training step each
        for spec, js in zip(self.jobs, s.jobs):
            if js.status == _RUNNING:
                finishing = js.iters + 1 == spec.iterations
                actions.append(
                    Action(
                        name=f"step[{spec.name}]",
                        thread=f"job.{spec.name}",
                        writes=tuple(f"gpu{d}" for d in js.devs),
                        ctrl_reads=(f"st.{spec.name}",),
                        ctrl_writes=(
                            (f"st.{spec.name}", "free")
                            if finishing
                            else (f"it.{spec.name}",)
                        ),
                        syncs=(f"run.{spec.name}",),
                        releases=(f"step.{spec.name}",)
                        + (
                            tuple(f"dev{d}" for d in js.devs)
                            if finishing
                            else ()
                        ),
                        frees=(
                            tuple((f"gpu{d}", 1) for d in js.devs)
                            if finishing
                            else ()
                        ),
                    )
                )
        return actions

    def apply(self, state: FleetState, action: Action) -> FleetState:
        s = state
        name = action.name
        jobs = list(s.jobs)
        if name.startswith("arrive"):
            jname = name[name.index("[") + 1 : name.index("]")]
            idx, _spec = self._job(jname)
            jobs[idx] = jobs[idx]._replace(status=_PENDING)
            return s._replace(jobs=tuple(jobs))
        if name.startswith("admit"):
            jname = name[name.index("[") + 1 : name.index("]")]
            idx, spec = self._job(jname)
            js = jobs[idx]
            granted = self._grant(s, spec)
            viol = s.viol
            for d in granted:
                holders = [
                    other.name
                    for other, ojs in zip(self.jobs, s.jobs)
                    if ojs.status == _RUNNING and d in ojs.devs
                ]
                if holders:
                    viol = viol + (
                        (
                            "MC607",
                            f"device {d} granted to gang {spec.name!r} "
                            f"while held by running {holders[0]!r} — "
                            "overlapping gangs",
                        ),
                    )
                    break
            if js.pre >= 0 and js.ckpt < js.pre:
                viol = viol + (
                    (
                        "MC608",
                        f"job {spec.name!r} resumes at iteration "
                        f"{js.ckpt} after being preempted at {js.pre} — "
                        "work lost without a fault",
                    ),
                )
            jobs[idx] = JobState(_RUNNING, js.ckpt, js.ckpt, granted, -1)
            free = tuple(d for d in s.free if d not in granted)
            return s._replace(jobs=tuple(jobs), free=free, viol=viol)
        if name.startswith("preempt"):
            inner = name[name.index("[") + 1 : name.index("]")]
            _waiter, vnames = inner.split("->")
            free = s.free
            for vname in vnames.split(","):
                idx, _spec = self._job(vname)
                js = jobs[idx]
                ckpt = (
                    js.ckpt
                    if self.mutate == "skip_checkpoint_on_preempt"
                    else js.iters
                )
                jobs[idx] = JobState(_PENDING, js.iters, ckpt, (), js.iters)
                free = tuple(sorted(free + js.devs))
            return s._replace(jobs=tuple(jobs), free=free)
        if name.startswith("kill"):
            d = self.kills[s.kills_done]
            alive = tuple(x for x in s.alive if x != d)
            free = tuple(x for x in s.free if x != d)
            for idx, (spec, js) in enumerate(zip(self.jobs, s.jobs)):
                if js.status == _RUNNING and d in js.devs:
                    jobs[idx] = js._replace(status=_FAULTED)
                    break
            return s._replace(
                jobs=tuple(jobs),
                alive=alive,
                free=free,
                kills_done=s.kills_done + 1,
            )
        if name.startswith("recover"):
            jname = name[name.index("[") + 1 : name.index("]")]
            idx, spec = self._job(jname)
            js = jobs[idx]
            survivors = tuple(d for d in js.devs if d in s.alive)
            jobs[idx] = JobState(_PENDING, js.ckpt, js.ckpt, (), -1)
            free = tuple(sorted(s.free + survivors))
            return s._replace(jobs=tuple(jobs), free=free)
        if name.startswith("giveup"):
            jname = name[name.index("[") + 1 : name.index("]")]
            idx, _spec = self._job(jname)
            jobs[idx] = jobs[idx]._replace(status=_FAILED)
            return s._replace(jobs=tuple(jobs))
        if name.startswith("step"):
            jname = name[name.index("[") + 1 : name.index("]")]
            idx, spec = self._job(jname)
            js = jobs[idx]
            iters = js.iters + 1
            if iters == spec.iterations:
                jobs[idx] = JobState(_COMPLETED, iters, iters, (), js.pre)
                free = tuple(sorted(s.free + js.devs))
                return s._replace(jobs=tuple(jobs), free=free)
            jobs[idx] = js._replace(iters=iters)
            return s._replace(jobs=tuple(jobs))
        raise ValueError(f"unknown action {name!r}")

    def _job(self, jname: str) -> Tuple[int, JobSpec]:
        for idx, spec in enumerate(self.jobs):
            if spec.name == jname:
                return idx, spec
        raise ValueError(f"unknown job {jname!r}")

    def is_terminal(self, state: FleetState) -> bool:
        return state.kills_done == len(self.kills) and all(
            js.status in (_COMPLETED, _FAILED) for js in state.jobs
        )

    def final_violations(
        self, state: FleetState
    ) -> Tuple[Tuple[str, str], ...]:
        return ()


__all__ = ["FleetGangModel", "FleetState", "JobSpec", "JobState"]
