"""State-machine model of the ``RolloutServer.drain(on_finish=...)`` hand-off.

Two threads:

* ``engine`` — ``admit[r]`` moves the lowest-id waiting request into a free
  decode slot (mirroring the continuous-batching scheduler's
  priority-then-arrival ranking for same-priority requests), ``decode[r]``
  appends one token to the request's result buffer; the final token marks
  the request finished, appends it to the completion queue, and frees its
  slot.
* ``consumer`` — ``handoff[r]`` delivers a finished request to the
  ``on_finish`` callback.  The intact guard only hands off the *head* of
  the completion queue, after the finishing decode (``syncs done{r}``).

The ``skip_done_guard`` mutation lets the consumer hand off any admitted
request — before its final token, or out of completion order — which the
checker reports as MC609 and which replays into an RC501 race
on the request's result buffer (consumer reads ``res{r}`` concurrently
with the engine still writing it) plus a TA205 free-without-alloc on the
``done{r}`` ledger tag.
"""

from __future__ import annotations

from typing import List, NamedTuple, Tuple

from repro.analysis.protocols.core import Action, ProtocolModel

_MUTATIONS = ("skip_done_guard",)

# request status codes
_WAITING = "W"
_RUNNING = "R"
_FINISHED = "F"  # completed, not yet handed to on_finish
_DELIVERED = "D"


class ServingState(NamedTuple):
    status: Tuple[str, ...]
    toks: Tuple[int, ...]
    finishq: Tuple[int, ...]  # completion order, undelivered head first
    delivered: Tuple[int, ...]  # hand-off order (for conformance checks)
    viol: Tuple[Tuple[str, str], ...]


class DrainHandoffModel(ProtocolModel):
    """Streaming completion hand-off of the serving engine's drain loop."""

    def __init__(
        self,
        targets: Tuple[int, ...] = (2, 1, 2),
        slots: int = 2,
        mutate: str = None,
    ) -> None:
        if mutate is not None and mutate not in _MUTATIONS:
            raise ValueError(
                f"unknown serving mutation {mutate!r}; have {_MUTATIONS}"
            )
        self.targets = tuple(targets)
        self.slots = slots
        self.mutate = mutate
        suffix = f"!{mutate}" if mutate else ""
        spec = "".join(str(t) for t in self.targets)
        self.name = f"drain-handoff[t{spec},s{slots}]{suffix}"

    def tag_capacity(self, tag: str):
        # Contract: each request completes once and is delivered once.
        if tag.startswith("done"):
            return 1
        return None

    def initial_state(self) -> ServingState:
        n = len(self.targets)
        return ServingState(
            status=(_WAITING,) * n,
            toks=(0,) * n,
            finishq=(),
            delivered=(),
            viol=(),
        )

    def enabled(self, state: ServingState) -> List[Action]:
        actions: List[Action] = []
        s = state
        running = sum(1 for st in s.status if st == _RUNNING)
        # engine: admit the lowest-id waiting request while a slot is free
        if running < self.slots:
            for r, st in enumerate(s.status):
                if st == _WAITING:
                    actions.append(
                        Action(
                            name=f"admit[{r}]",
                            thread="engine",
                            ctrl_writes=(f"st{r}", "nrun"),
                            syncs=("slotfree",),
                        )
                    )
                    break
        # engine: one decode step per running request
        for r, st in enumerate(s.status):
            if st == _RUNNING:
                finishing = s.toks[r] + 1 == self.targets[r]
                actions.append(
                    Action(
                        name=f"decode[{r}]",
                        thread="engine",
                        writes=(f"res{r}",),
                        ctrl_writes=(
                            (f"st{r}", "nrun", "finishq")
                            if finishing
                            else (f"tok{r}",)
                        ),
                        releases=(
                            (f"done{r}", "slotfree") if finishing else ()
                        ),
                        allocs=(((f"done{r}", 1),) if finishing else ()),
                    )
                )
        # consumer: hand a completed request to on_finish
        for r, st in enumerate(s.status):
            if self.mutate == "skip_done_guard":
                eligible = st in (_RUNNING, _FINISHED)
            else:
                eligible = (
                    st == _FINISHED and s.finishq and s.finishq[0] == r
                )
            if eligible:
                actions.append(
                    Action(
                        name=f"handoff[{r}]",
                        thread="consumer",
                        reads=(f"res{r}",),
                        writes=(f"deliv{r}",),
                        ctrl_reads=("finishq", f"st{r}"),
                        ctrl_writes=(f"st{r}", "finishq"),
                        syncs=(f"done{r}",),
                        frees=((f"done{r}", 1),),
                    )
                )
        return actions

    def apply(self, state: ServingState, action: Action) -> ServingState:
        s = state
        name = action.name
        r = int(name[name.index("[") + 1 : name.index("]")])
        if name.startswith("admit"):
            status = list(s.status)
            status[r] = _RUNNING
            return s._replace(status=tuple(status))
        if name.startswith("decode"):
            toks = list(s.toks)
            toks[r] += 1
            status = list(s.status)
            finishq = s.finishq
            if toks[r] == self.targets[r]:
                status[r] = _FINISHED
                finishq = finishq + (r,)
            return s._replace(
                status=tuple(status), toks=tuple(toks), finishq=finishq
            )
        if name.startswith("handoff"):
            viol = s.viol
            if s.status[r] != _FINISHED:
                viol = viol + (
                    (
                        "MC609",
                        f"request {r} handed to on_finish after only "
                        f"{s.toks[r]}/{self.targets[r]} tokens — delivered "
                        "before completion",
                    ),
                )
            elif not s.finishq or s.finishq[0] != r:
                expected = s.finishq[0] if s.finishq else None
                viol = viol + (
                    (
                        "MC609",
                        f"request {r} delivered out of completion order "
                        f"(head of the completion queue is {expected})",
                    ),
                )
            status = list(s.status)
            status[r] = _DELIVERED
            finishq = tuple(x for x in s.finishq if x != r)
            return s._replace(
                status=tuple(status),
                finishq=finishq,
                delivered=s.delivered + (r,),
                viol=viol,
            )
        raise ValueError(f"unknown action {name!r}")

    def is_terminal(self, state: ServingState) -> bool:
        return all(st == _DELIVERED for st in state.status)

    def final_violations(
        self, state: ServingState
    ) -> Tuple[Tuple[str, str], ...]:
        out = []
        for r in state.finishq:
            out.append(
                (
                    "MC609",
                    f"request {r} completed but its on_finish callback "
                    "never fired — streamed result dropped",
                )
            )
        return tuple(out)


__all__ = ["DrainHandoffModel", "ServingState"]
