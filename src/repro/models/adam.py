"""Adam optimizer over a named-parameter dict ([38], used by the paper §8.1).

Keeps FP64 moments per parameter (standing in for the FP32 optimizer states
of mixed-precision training) and supports gradient clipping by global norm,
which PPO implementations conventionally apply.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.models.autograd import Tensor


class Adam:
    """Classic Adam with bias correction and optional global-norm clipping."""

    def __init__(
        self,
        params: Dict[str, Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        max_grad_norm: Optional[float] = None,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.params = params
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.max_grad_norm = max_grad_norm
        self.step_count = 0
        self._m: Dict[str, np.ndarray] = {
            name: np.zeros_like(p.data) for name, p in params.items()
        }
        self._v: Dict[str, np.ndarray] = {
            name: np.zeros_like(p.data) for name, p in params.items()
        }

    def state_bytes(self) -> int:
        """Optimizer-state footprint (both moments)."""
        return sum(m.nbytes for m in self._m.values()) + sum(
            v.nbytes for v in self._v.values()
        )

    def grad_global_norm(self) -> float:
        total = 0.0
        for p in self.params.values():
            if p.grad is not None:
                total += float((p.grad**2).sum())
        return float(np.sqrt(total))

    def clip_gradients(self) -> float:
        """Scale all gradients so the global norm is at most ``max_grad_norm``."""
        norm = self.grad_global_norm()
        if self.max_grad_norm is not None and norm > self.max_grad_norm > 0:
            scale = self.max_grad_norm / (norm + 1e-12)
            for p in self.params.values():
                if p.grad is not None:
                    p.grad = p.grad * scale
        return norm

    def step(self) -> None:
        """Apply one Adam update to every parameter with a gradient."""
        self.clip_gradients()
        self.step_count += 1
        t = self.step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for name, p in self.params.items():
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m = self._m[name]
            v = self._v[name]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params.values():
            p.zero_grad()
