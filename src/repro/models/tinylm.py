"""TinyLM: a decoder-only transformer LM with exact gradients and a KV cache.

Plays the roles of the paper's Llama actors/critics/reference/reward models at
miniature scale.  Architecture mirrors Llama: RMSNorm, SwiGLU MLP, causal
multi-head attention; positions use a learned embedding (RoPE adds nothing at
this scale).  The output head is either a vocabulary projection (``"lm"``,
for actor/reference) or a scalar head (``"scalar"``, for critic/reward/cost —
§2.1: "with the language modeling head replaced by a scalar output head").
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import ModelSpec
from repro.models import autograd as ag
from repro.models.autograd import Tensor


@dataclasses.dataclass(frozen=True)
class TinyLMConfig:
    """Concrete architecture of a TinyLM instance."""

    n_layers: int = 2
    hidden_size: int = 32
    n_heads: int = 4
    ffn_hidden_size: int = 64
    vocab_size: int = 64
    max_seq_len: int = 64
    output_head: str = "lm"  # "lm" or "scalar"
    rms_eps: float = 1e-5

    def __post_init__(self) -> None:
        if self.hidden_size % self.n_heads:
            raise ValueError(
                f"hidden_size {self.hidden_size} not divisible by "
                f"n_heads {self.n_heads}"
            )
        if self.output_head not in ("lm", "scalar"):
            raise ValueError(f"unknown output head {self.output_head!r}")

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.n_heads

    @classmethod
    def from_spec(cls, spec: ModelSpec, output_head: str = "lm") -> "TinyLMConfig":
        return cls(
            n_layers=spec.n_layers,
            hidden_size=spec.hidden_size,
            n_heads=spec.n_heads,
            ffn_hidden_size=spec.ffn_hidden_size,
            vocab_size=spec.vocab_size,
            max_seq_len=spec.max_seq_len,
            output_head=output_head,
        )


def _rms_norm(x: Tensor, weight: Tensor, eps: float) -> Tensor:
    variance = (x * x).mean(axis=-1, keepdims=True)
    return x * ((variance + eps) ** -0.5) * weight


class KVCache:
    """Per-layer cached keys/values for incremental generation.

    Arrays have shape ``(batch, n_heads, seq, head_dim)`` and grow along the
    sequence axis as tokens are appended — the same layout vLLM pages manage
    on real hardware.
    """

    def __init__(self, n_layers: int) -> None:
        self.keys: List[Optional[np.ndarray]] = [None] * n_layers
        self.values: List[Optional[np.ndarray]] = [None] * n_layers

    def append(self, layer: int, k: np.ndarray, v: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if self.keys[layer] is None:
            self.keys[layer] = k
            self.values[layer] = v
        else:
            self.keys[layer] = np.concatenate([self.keys[layer], k], axis=2)
            self.values[layer] = np.concatenate([self.values[layer], v], axis=2)
        return self.keys[layer], self.values[layer]

    @property
    def seq_len(self) -> int:
        return 0 if self.keys[0] is None else self.keys[0].shape[2]

    def trim(self, seq_len: int) -> None:
        """Drop cached entries beyond position ``seq_len`` in every layer.

        Copies the kept prefix so the tail's memory is actually released
        (a plain slice would keep the full buffer alive through its base).
        Used by preempt-and-recompute serving to roll a sequence back.
        """
        if seq_len < 0:
            raise ValueError(f"seq_len must be >= 0, got {seq_len}")
        if seq_len == 0:
            self.free()
            return
        for layer, (k, v) in enumerate(zip(self.keys, self.values)):
            if k is not None and k.shape[2] > seq_len:
                self.keys[layer] = k[:, :, :seq_len].copy()
                self.values[layer] = v[:, :, :seq_len].copy()

    def free(self) -> None:
        """Release every cached tensor (sequence finished or was preempted)."""
        for layer in range(len(self.keys)):
            self.keys[layer] = None
            self.values[layer] = None

    def nbytes_by_layer(self) -> List[int]:
        """Per-layer K+V byte totals — the granularity a block manager meters."""
        return [
            (k.nbytes + v.nbytes) if k is not None else 0
            for k, v in zip(self.keys, self.values)
        ]

    def nbytes(self) -> int:
        return sum(self.nbytes_by_layer())


class TinyLM:
    """The model: a parameter dict plus forward/generation methods."""

    def __init__(
        self,
        config: TinyLMConfig,
        params: Optional[Dict[str, Tensor]] = None,
        seed: int = 0,
    ) -> None:
        self.config = config
        if params is None:
            params = self._init_params(config, seed)
        self.params = params

    # -- parameter management ---------------------------------------------------

    @staticmethod
    def _init_params(config: TinyLMConfig, seed: int) -> Dict[str, Tensor]:
        rng = np.random.default_rng(seed)
        h, f, v = config.hidden_size, config.ffn_hidden_size, config.vocab_size

        def init(shape: Tuple[int, ...], scale: Optional[float] = None) -> Tensor:
            if scale is None:
                scale = 1.0 / np.sqrt(shape[0])
            return Tensor(
                rng.normal(0.0, scale, size=shape), requires_grad=True
            )

        params: Dict[str, Tensor] = {
            "embed.weight": init((v, h), scale=0.02),
            "pos_embed.weight": init((config.max_seq_len, h), scale=0.02),
            "final_norm.weight": Tensor(np.ones(h), requires_grad=True),
        }
        for i in range(config.n_layers):
            prefix = f"layers.{i}"
            params[f"{prefix}.attn_norm.weight"] = Tensor(
                np.ones(h), requires_grad=True
            )
            params[f"{prefix}.attn.wq"] = init((h, h))
            params[f"{prefix}.attn.wk"] = init((h, h))
            params[f"{prefix}.attn.wv"] = init((h, h))
            params[f"{prefix}.attn.wo"] = init((h, h))
            params[f"{prefix}.mlp_norm.weight"] = Tensor(
                np.ones(h), requires_grad=True
            )
            params[f"{prefix}.mlp.w_gate"] = init((h, f))
            params[f"{prefix}.mlp.w_up"] = init((h, f))
            params[f"{prefix}.mlp.w_down"] = init((f, h))
        if config.output_head == "lm":
            params["lm_head.weight"] = init((h, v))
        else:
            params["value_head.weight"] = init((h, 1))
        return params

    def zero_grad(self) -> None:
        for p in self.params.values():
            p.zero_grad()

    def named_parameters(self) -> Dict[str, Tensor]:
        return self.params

    def n_params(self) -> int:
        return sum(p.size for p in self.params.values())

    def param_bytes(self) -> int:
        return sum(p.data.nbytes for p in self.params.values())

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.params.items()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        missing = set(self.params) - set(state)
        extra = set(state) - set(self.params)
        if missing or extra:
            raise ValueError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"extra={sorted(extra)}"
            )
        for name, arr in state.items():
            if self.params[name].data.shape != arr.shape:
                raise ValueError(
                    f"shape mismatch for {name}: model "
                    f"{self.params[name].data.shape} vs state {arr.shape}"
                )
            self.params[name].data = np.asarray(arr, dtype=np.float64).copy()

    def clone(self) -> "TinyLM":
        """Deep-copy the model (used to spawn the frozen reference policy)."""
        clone = TinyLM(self.config, params={}, seed=0)
        clone.params = {
            name: Tensor(p.data.copy(), requires_grad=True)
            for name, p in self.params.items()
        }
        return clone

    # -- forward ------------------------------------------------------------------

    def _attention(
        self,
        x: Tensor,
        layer: int,
        cache: Optional[KVCache],
        pos_offset: int,
    ) -> Tensor:
        cfg = self.config
        b, t, h = x.shape
        nh, hd = cfg.n_heads, cfg.head_dim
        p = self.params
        prefix = f"layers.{layer}.attn"

        def split_heads(proj: Tensor) -> Tensor:
            return proj.reshape(b, t, nh, hd).transpose(0, 2, 1, 3)

        q = split_heads(x @ p[f"{prefix}.wq"])
        k = split_heads(x @ p[f"{prefix}.wk"])
        v = split_heads(x @ p[f"{prefix}.wv"])

        if cache is not None:
            k_data, v_data = cache.append(layer, k.data, v.data)
            k = Tensor(k_data)
            v = Tensor(v_data)
        kv_len = k.shape[2]

        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(hd))
        # causal mask: query position (pos_offset + i) attends to kv <= it
        q_pos = pos_offset + np.arange(t)[:, None]
        kv_pos = np.arange(kv_len)[None, :]
        mask = kv_pos > q_pos  # True = masked out
        scores = scores + Tensor(np.where(mask, -1e9, 0.0))
        attn = ag.softmax(scores, axis=-1)
        out = attn @ v  # (b, nh, t, hd)
        out = out.transpose(0, 2, 1, 3).reshape(b, t, h)
        return out @ p[f"{prefix}.wo"]

    def _mlp(self, x: Tensor, layer: int) -> Tensor:
        p = self.params
        prefix = f"layers.{layer}.mlp"
        gate = (x @ p[f"{prefix}.w_gate"]).silu()
        up = x @ p[f"{prefix}.w_up"]
        return (gate * up) @ p[f"{prefix}.w_down"]

    def _trunk(
        self,
        token_ids: np.ndarray,
        cache: Optional[KVCache] = None,
        pos_offset: int = 0,
    ) -> Tensor:
        cfg = self.config
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim != 2:
            raise ValueError(f"token_ids must be (batch, seq), got {token_ids.shape}")
        t = token_ids.shape[1]
        if pos_offset + t > cfg.max_seq_len:
            raise ValueError(
                f"sequence length {pos_offset + t} exceeds max_seq_len "
                f"{cfg.max_seq_len}"
            )
        positions = np.arange(pos_offset, pos_offset + t)
        x = ag.embedding(self.params["embed.weight"], token_ids) + ag.embedding(
            self.params["pos_embed.weight"], positions
        )
        for layer in range(cfg.n_layers):
            normed = _rms_norm(
                x, self.params[f"layers.{layer}.attn_norm.weight"], cfg.rms_eps
            )
            x = x + self._attention(normed, layer, cache, pos_offset)
            normed = _rms_norm(
                x, self.params[f"layers.{layer}.mlp_norm.weight"], cfg.rms_eps
            )
            x = x + self._mlp(normed, layer)
        return _rms_norm(x, self.params["final_norm.weight"], cfg.rms_eps)

    def forward(
        self,
        token_ids: np.ndarray,
        cache: Optional[KVCache] = None,
        pos_offset: int = 0,
    ) -> Tensor:
        """Logits ``(batch, seq, vocab)`` or values ``(batch, seq)``."""
        x = self._trunk(token_ids, cache=cache, pos_offset=pos_offset)
        if self.config.output_head == "lm":
            return x @ self.params["lm_head.weight"]
        values = x @ self.params["value_head.weight"]
        b, t, _one = values.shape
        return values.reshape(b, t)

    __call__ = forward

    # -- LM conveniences -------------------------------------------------------------

    def token_log_probs(self, token_ids: np.ndarray) -> Tensor:
        """Log-prob of each next token: out ``(batch, seq-1)``.

        ``out[:, i] = log p(token[i+1] | token[:i+1])``.
        """
        if self.config.output_head != "lm":
            raise RuntimeError("token_log_probs requires an LM head")
        token_ids = np.asarray(token_ids, dtype=np.int64)
        logits = self.forward(token_ids[:, :-1])
        logp = ag.log_softmax(logits, axis=-1)
        return ag.gather_last(logp, token_ids[:, 1:])

    def values(self, token_ids: np.ndarray) -> Tensor:
        """Scalar head output per position ``(batch, seq)``."""
        if self.config.output_head != "scalar":
            raise RuntimeError("values() requires a scalar head")
        return self.forward(token_ids)

    def sequence_reward(self, token_ids: np.ndarray) -> Tensor:
        """Sample-level score: scalar head at the final position ``(batch,)``."""
        values = self.values(token_ids)
        return values[:, -1]
