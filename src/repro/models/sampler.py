"""Token sampling and auto-regressive generation for TinyLM.

Implements the generation stage of RLHF (§2.1 stage 1): KV-cached incremental
decoding with temperature sampling or greedy decoding (ReMax's variance
reduction uses ``do_sample=False`` for the baseline pass, Figure 6).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from repro.models.autograd import no_grad
from repro.models.tinylm import KVCache, TinyLM


def _softmax_probs(logits: np.ndarray, temperature: float) -> np.ndarray:
    """Temperature-scaled sampling distribution per row, ``(batch, vocab)``."""
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    scaled = logits / temperature
    scaled = scaled - scaled.max(axis=-1, keepdims=True)
    probs = np.exp(scaled)
    probs /= probs.sum(axis=-1, keepdims=True)
    return probs


def _inverse_cdf_sample(probs: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
    """Batched inverse-CDF draw, bit-exact with per-row ``rng.choice``.

    ``Generator.choice(n, p=row)`` computes ``cdf = row.cumsum();
    cdf /= cdf[-1]`` and returns ``searchsorted(cdf, rng.random(),
    side="right")``.  Replaying exactly those operations across the whole
    batch — cumsum, normalise by the last column, count entries ``<= u``
    (identical to right-sided search on a non-decreasing array) — keeps
    every row's draw bit-identical to the historical per-row loop while
    sampling the batch in one vectorized pass.
    """
    cdf = probs.cumsum(axis=-1)
    cdf /= cdf[:, -1:]
    return (cdf <= uniforms[:, None]).sum(axis=-1).astype(np.int64)


def sample_tokens(
    logits: np.ndarray,
    rng: np.random.Generator,
    temperature: float = 1.0,
    greedy: bool = False,
) -> np.ndarray:
    """Sample one token per row from ``logits`` of shape ``(batch, vocab)``.

    Sampling is a single batched inverse-CDF pass that consumes exactly one
    uniform draw per row from ``rng`` — the same stream consumption, and
    bit-identical output, as the per-row ``rng.choice`` loop it replaced
    (:func:`sample_tokens_reference`, kept as the golden-test oracle).
    """
    logits = np.asarray(logits, dtype=np.float64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be (batch, vocab), got {logits.shape}")
    if greedy:
        return logits.argmax(axis=-1)
    probs = _softmax_probs(logits, temperature)
    return _inverse_cdf_sample(probs, rng.random(logits.shape[0]))


def sample_tokens_reference(
    logits: np.ndarray,
    rng: np.random.Generator,
    temperature: float = 1.0,
    greedy: bool = False,
) -> np.ndarray:
    """The historical per-row ``rng.choice`` sampler.

    Kept solely as the oracle for the bit-exactness golden tests (and the
    ``sampler_speedup`` measurement in ``repro.perf.bench``); production
    paths use the vectorized :func:`sample_tokens`.
    """
    logits = np.asarray(logits, dtype=np.float64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be (batch, vocab), got {logits.shape}")
    if greedy:
        return logits.argmax(axis=-1)
    probs = _softmax_probs(logits, temperature)
    out = np.empty(logits.shape[0], dtype=np.int64)
    for i, row in enumerate(probs):
        out[i] = rng.choice(len(row), p=row)
    return out


def sample_tokens_batch(
    logits: np.ndarray,
    rngs: Sequence[np.random.Generator],
    temperature: float = 1.0,
    greedy: bool = False,
) -> np.ndarray:
    """Sample one token per row where each row has its *own* rng stream.

    The serving engine's batched decode path: row ``i`` consumes exactly one
    scalar uniform from ``rngs[i]`` (identical stream consumption to sampling
    that request alone), then the softmax/CDF/search work runs vectorized
    over the whole batch.
    """
    logits = np.asarray(logits, dtype=np.float64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be (batch, vocab), got {logits.shape}")
    if len(rngs) != logits.shape[0]:
        raise ValueError(
            f"need one rng per row: {len(rngs)} rngs for {logits.shape[0]} rows"
        )
    if greedy:
        return logits.argmax(axis=-1)
    probs = _softmax_probs(logits, temperature)
    uniforms = np.array([rng.random() for rng in rngs])
    return _inverse_cdf_sample(probs, uniforms)


@dataclasses.dataclass
class GenerationOutput:
    """Result of one generation pass.

    Attributes:
        sequences: Prompt + response token ids, ``(batch, prompt+response)``.
        response_log_probs: Log-prob of each generated token under the
            sampling distribution, ``(batch, response)``.
        prompt_length: Number of prompt tokens (responses start there).
        kv_cache_bytes: Peak KV-cache footprint of the pass, for the memory
            accounting the HybridEngine's offload path uses.
        response_mask: ``(batch, response)`` with 1.0 on real response tokens
            (the EOS token itself included) and 0.0 on post-EOS padding.
            ``None`` when generation ran without an ``eos_token_id`` — every
            slot then emits exactly ``max_new_tokens`` real tokens.
    """

    sequences: np.ndarray
    response_log_probs: np.ndarray
    prompt_length: int
    kv_cache_bytes: int
    response_mask: Optional[np.ndarray] = None

    @property
    def responses(self) -> np.ndarray:
        return self.sequences[:, self.prompt_length :]

    @property
    def response_lengths(self) -> np.ndarray:
        """Real response tokens per sequence, ``(batch,)``."""
        if self.response_mask is None:
            width = self.sequences.shape[1] - self.prompt_length
            return np.full(self.sequences.shape[0], width, dtype=np.int64)
        return self.response_mask.sum(axis=1).astype(np.int64)


def generate(
    model: TinyLM,
    prompts: np.ndarray,
    max_new_tokens: int,
    temperature: float = 1.0,
    greedy: bool = False,
    rng: Optional[np.random.Generator] = None,
    eos_token_id: Optional[int] = None,
    pad_token_id: Optional[int] = None,
) -> GenerationOutput:
    """Auto-regressively extend ``prompts`` by up to ``max_new_tokens`` tokens.

    Uses a real KV cache: the prompt is prefilled once, then each step feeds
    only the newly sampled token — the prefill/decode split whose memory-bound
    decode phase motivates the paper's smaller generation TP sizes (§2.3).

    With ``eos_token_id`` set, a sequence that emits EOS stops producing real
    tokens: subsequent positions are filled with ``pad_token_id`` (defaults
    to the EOS id), their log-probs are zeroed, and ``response_mask`` marks
    the real tokens.  Output stays fixed-width ``(batch, prompt +
    max_new_tokens)`` so DP micro-batches concatenate.  The rng is consumed
    lock-step for finished rows too, keeping each row's sample stream
    independent of the other rows' termination (and the no-EOS behaviour
    bit-identical to before).  Once every row has terminated the decode loop
    exits early — the lock-step analogue of continuous batching's slot
    refill, and the sequential baseline the serving engine is checked
    against.
    """
    if model.config.output_head != "lm":
        raise RuntimeError("generation requires an LM head")
    prompts = np.asarray(prompts, dtype=np.int64)
    if prompts.ndim != 2:
        raise ValueError(f"prompts must be (batch, seq), got {prompts.shape}")
    if max_new_tokens < 1:
        raise ValueError(f"max_new_tokens must be >= 1, got {max_new_tokens}")
    if eos_token_id is not None and not (
        0 <= eos_token_id < model.config.vocab_size
    ):
        raise ValueError(
            f"eos_token_id {eos_token_id} outside vocab "
            f"[0, {model.config.vocab_size})"
        )
    if rng is None:
        rng = np.random.default_rng(0)

    batch, prompt_len = prompts.shape
    cache = KVCache(model.config.n_layers)
    sequences = prompts.copy()
    log_probs = np.zeros((batch, max_new_tokens), dtype=np.float64)
    mask = np.ones((batch, max_new_tokens))
    alive = np.ones(batch, dtype=bool)
    pad = eos_token_id if pad_token_id is None else pad_token_id

    with no_grad():
        logits = model.forward(prompts, cache=cache, pos_offset=0)
        step_logits = logits.data[:, -1, :]
        for step in range(max_new_tokens):
            next_tokens = sample_tokens(
                step_logits, rng, temperature=temperature, greedy=greedy
            )
            shifted = step_logits - step_logits.max(axis=-1, keepdims=True)
            logp = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
            step_logp = logp[np.arange(batch), next_tokens]
            if eos_token_id is not None:
                next_tokens = np.where(alive, next_tokens, pad)
                step_logp = np.where(alive, step_logp, 0.0)
                mask[:, step] = alive
                alive = alive & (next_tokens != eos_token_id)
            log_probs[:, step] = step_logp
            sequences = np.concatenate(
                [sequences, next_tokens[:, None]], axis=1
            )
            if step + 1 < max_new_tokens:
                if eos_token_id is not None and not alive.any():
                    # every row terminated: emit padding for the remaining
                    # columns without running the model
                    remaining = max_new_tokens - (step + 1)
                    sequences = np.concatenate(
                        [
                            sequences,
                            np.full((batch, remaining), pad, dtype=sequences.dtype),
                        ],
                        axis=1,
                    )
                    break
                logits = model.forward(
                    next_tokens[:, None],
                    cache=cache,
                    pos_offset=prompt_len + step,
                )
                step_logits = logits.data[:, -1, :]

    return GenerationOutput(
        sequences=sequences,
        response_log_probs=log_probs,
        prompt_length=prompt_len,
        kv_cache_bytes=cache.nbytes(),
        response_mask=mask if eos_token_id is not None else None,
    )
