"""Tensor/pipeline sharding of TinyLM parameters.

Maps every TinyLM parameter to a Megatron-style partition spec:

* **TP axis**: Q/K/V and MLP gate/up projections are column-parallel (split on
  the output axis); attention-output and MLP down projections are row-parallel
  (split on the input axis); embeddings and the LM head split on the vocab
  axis; norms and the scalar value head are replicated.
* **PP stage**: layers are assigned to contiguous pipeline stages; the token
  and position embeddings live on the first stage, the final norm and output
  head on the last stage.

``shard_params``/``gather_full_params`` are exact inverses, which the
HybridEngine tests rely on for the bit-exact resharding check.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

_LAYER_RE = re.compile(r"^layers\.(\d+)\.")

#: Parameter-name suffix -> TP split axis (None = replicated on the TP group).
_TP_AXES: List[Tuple[str, Optional[int]]] = [
    # order matters: longer, more specific suffixes first
    ("pos_embed.weight", None),
    ("embed.weight", 0),
    (".attn.wq", 1),
    (".attn.wk", 1),
    (".attn.wv", 1),
    (".attn.wo", 0),
    (".mlp.w_gate", 1),
    (".mlp.w_up", 1),
    (".mlp.w_down", 0),
    ("norm.weight", None),
    ("lm_head.weight", 1),
    ("value_head.weight", None),
]


def param_partition(name: str) -> Optional[int]:
    """TP split axis for parameter ``name`` (None when replicated)."""
    for suffix, axis in _TP_AXES:
        if name.endswith(suffix):
            return axis
    raise KeyError(f"no partition spec for parameter {name!r}")


def layer_of(name: str) -> Optional[int]:
    """Transformer layer index a parameter belongs to, or None for non-layer."""
    match = _LAYER_RE.match(name)
    return int(match.group(1)) if match else None


def stage_layers(n_layers: int, pp_size: int, pp_rank: int) -> range:
    """Layers owned by pipeline stage ``pp_rank`` (contiguous blocks)."""
    if n_layers % pp_size:
        raise ValueError(
            f"{n_layers} layers not divisible into {pp_size} pipeline stages"
        )
    per = n_layers // pp_size
    return range(pp_rank * per, (pp_rank + 1) * per)


def pp_stage_of(name: str, n_layers: int, pp_size: int) -> int:
    """Pipeline stage that owns parameter ``name``."""
    layer = layer_of(name)
    if layer is None:
        if name.startswith(("embed.", "pos_embed.")):
            return 0
        return pp_size - 1  # final norm and output heads
    return layer // (n_layers // pp_size)


def _tp_slice(arr: np.ndarray, axis: int, rank: int, size: int) -> np.ndarray:
    if arr.shape[axis] % size:
        raise ValueError(
            f"axis {axis} length {arr.shape[axis]} not divisible by TP size {size}"
        )
    per = arr.shape[axis] // size
    index = [slice(None)] * arr.ndim
    index[axis] = slice(rank * per, (rank + 1) * per)
    return arr[tuple(index)]


def shard_params(
    state: Mapping[str, np.ndarray],
    tp_rank: int,
    tp_size: int,
    pp_rank: int = 0,
    pp_size: int = 1,
    n_layers: Optional[int] = None,
) -> Dict[str, np.ndarray]:
    """Extract rank ``(pp_rank, tp_rank)``'s shard of a full state dict."""
    if not 0 <= tp_rank < tp_size:
        raise ValueError(f"tp_rank {tp_rank} out of range for tp={tp_size}")
    if not 0 <= pp_rank < pp_size:
        raise ValueError(f"pp_rank {pp_rank} out of range for pp={pp_size}")
    if pp_size > 1 and n_layers is None:
        raise ValueError("n_layers is required when pp_size > 1")
    shard: Dict[str, np.ndarray] = {}
    for name, arr in state.items():
        if pp_size > 1 and pp_stage_of(name, n_layers, pp_size) != pp_rank:
            continue
        axis = param_partition(name)
        if axis is None or tp_size == 1:
            shard[name] = np.asarray(arr, dtype=np.float64).copy()
        else:
            shard[name] = _tp_slice(
                np.asarray(arr, dtype=np.float64), axis, tp_rank, tp_size
            ).copy()
    return shard


def gather_full_params(
    shards: Mapping[Tuple[int, int], Mapping[str, np.ndarray]],
    tp_size: int,
    pp_size: int = 1,
) -> Dict[str, np.ndarray]:
    """Reassemble the full state from per-``(pp_rank, tp_rank)`` shards."""
    expected = {(p, t) for p in range(pp_size) for t in range(tp_size)}
    if set(shards) != expected:
        raise ValueError(
            f"need shards for all (pp, tp) ranks {sorted(expected)}, "
            f"got {sorted(shards)}"
        )
    full: Dict[str, np.ndarray] = {}
    for pp_rank in range(pp_size):
        names = shards[(pp_rank, 0)].keys()
        for name in names:
            axis = param_partition(name)
            if axis is None or tp_size == 1:
                full[name] = np.asarray(
                    shards[(pp_rank, 0)][name], dtype=np.float64
                ).copy()
            else:
                pieces = [
                    np.asarray(shards[(pp_rank, t)][name], dtype=np.float64)
                    for t in range(tp_size)
                ]
                full[name] = np.concatenate(pieces, axis=axis)
    return full


def shard_nbytes(shard: Mapping[str, np.ndarray]) -> int:
    return sum(np.asarray(a, dtype=np.float64).nbytes for a in shard.values())


def flat_shard_params(
    state: Mapping[str, np.ndarray],
    rank: int,
    n_shards: int,
) -> Dict[str, np.ndarray]:
    """FSDP/ZeRO-3 style sharding: each param flattened and split ``n`` ways.

    Uneven tails are zero-padded on the last rank (as FSDP pads flat
    parameters), with the original size recorded by ``gather_flat_shards``
    through the parameter's true shape.
    """
    if not 0 <= rank < n_shards:
        raise ValueError(f"rank {rank} out of range for {n_shards} shards")
    shard: Dict[str, np.ndarray] = {}
    for name, arr in state.items():
        flat = np.asarray(arr, dtype=np.float64).reshape(-1)
        per = -(-flat.size // n_shards)  # ceil division
        piece = flat[rank * per : (rank + 1) * per]
        if piece.size < per:
            piece = np.concatenate(
                [piece, np.zeros(per - piece.size, dtype=np.float64)]
            )
        shard[name] = piece.copy()
    return shard


def gather_flat_shards(
    pieces: List[Mapping[str, np.ndarray]],
    shapes: Mapping[str, Tuple[int, ...]],
) -> Dict[str, np.ndarray]:
    """Inverse of :func:`flat_shard_params`; ``shapes`` gives true shapes."""
    if not pieces:
        raise ValueError("no shards to gather")
    full: Dict[str, np.ndarray] = {}
    for name, shape in shapes.items():
        flat = np.concatenate(
            [np.asarray(p[name], dtype=np.float64).reshape(-1) for p in pieces]
        )
        size = int(np.prod(shape))
        full[name] = flat[:size].reshape(shape).copy()
    return full


def merge_tp_shards(
    pieces: List[Mapping[str, np.ndarray]],
) -> Dict[str, np.ndarray]:
    """Concatenate TP shards of the *same* PP stage into a wider shard.

    Used by the HybridEngine's micro-DP all-gather: gathering ``t/t_g``
    training TP shards yields one generation TP shard.  Parameter-name sets
    must match across pieces; replicated parameters are taken from the first.
    """
    if not pieces:
        raise ValueError("no shards to merge")
    names = set(pieces[0])
    for piece in pieces[1:]:
        if set(piece) != names:
            raise ValueError("TP shards disagree on parameter names")
    merged: Dict[str, np.ndarray] = {}
    for name in names:
        axis = param_partition(name)
        if axis is None or len(pieces) == 1:
            merged[name] = np.asarray(
                pieces[0][name], dtype=np.float64
            ).copy()
        else:
            merged[name] = np.concatenate(
                [np.asarray(p[name], dtype=np.float64) for p in pieces],
                axis=axis,
            )
    return merged
