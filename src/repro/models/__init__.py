"""TinyLM: a real (miniature) decoder-only transformer LM in numpy.

The paper's models are Llama 7B-70B run on Megatron-LM and vLLM; here the
same *roles* (actor, critic, reference, reward, cost) are played by a small
transformer with a tape-based autograd engine, real Adam updates, KV-cached
auto-regressive generation, and shardable parameters.  Functional tests and
examples run actual RLHF optimisation on it; the analytical performance layer
(:mod:`repro.perf`) covers the paper's model scales.
"""

from repro.models.autograd import Tensor, no_grad
from repro.models.tinylm import TinyLM, TinyLMConfig
from repro.models.adam import Adam
from repro.models.sampler import sample_tokens
from repro.models.sharding import (
    gather_full_params,
    param_partition,
    shard_params,
)

__all__ = [
    "Adam",
    "Tensor",
    "TinyLM",
    "TinyLMConfig",
    "gather_full_params",
    "no_grad",
    "param_partition",
    "sample_tokens",
    "shard_params",
]
