"""A minimal reverse-mode autograd engine over numpy arrays.

This is the compute substrate standing in for PyTorch: enough of a tape-based
autodiff to express a transformer LM with RMSNorm, SwiGLU, causal attention,
and the RLHF losses (PPO clip, value loss, KL penalties), all with exact
gradients.  It is deliberately small and explicit — no broadcasting tricks
beyond numpy's own, gradients accumulate into ``Tensor.grad``.

Shapes follow numpy broadcasting; ``_unbroadcast`` folds gradient axes back
to the parameter shape, so biases and scalars work naturally.
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, "Tensor"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Disable graph construction (generation / inference passes)."""
    # the grad-mode flag is interpreter-global by design, like
    # torch.no_grad; restored in the finally below so it cannot leak
    global _GRAD_ENABLED  # repro-lint: ignore[RL305]
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were broadcast from ``shape``."""
    if grad.shape == shape:
        return grad
    # sum leading axes added by broadcasting
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # sum axes that were size-1 in the original
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array node on the autodiff tape."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    # make ``ndarray <op> Tensor`` defer to the Tensor's reflected operator
    # instead of numpy broadcasting over the Tensor object
    __array_ufunc__ = None

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad and _GRAD_ENABLED
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def _wrap(x: ArrayLike) -> "Tensor":
        return x if isinstance(x, Tensor) else Tensor(x)

    @classmethod
    def _from_op(
        cls,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = cls(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    # -- basic properties -----------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # -- arithmetic -----------------------------------------------------------

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data + other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g)
            if other.requires_grad:
                other._accumulate(g)

        return Tensor._from_op(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-g)

        return Tensor._from_op(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._wrap(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._wrap(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data * other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * other.data)
            if other.requires_grad:
                other._accumulate(g * self.data)

        return Tensor._from_op(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data / other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g / other.data)
            if other.requires_grad:
                other._accumulate(-g * self.data / (other.data**2))

        return Tensor._from_op(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._wrap(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data**exponent

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * exponent * self.data ** (exponent - 1))

        return Tensor._from_op(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data @ other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                grad_w = np.swapaxes(self.data, -1, -2) @ g
                other._accumulate(grad_w)

        return Tensor._from_op(out_data, (self, other), backward)

    # -- elementwise nonlinearities --------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data)

        return Tensor._from_op(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g / self.data)

        return Tensor._from_op(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * (1.0 - out_data**2))

        return Tensor._from_op(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data * (1.0 - out_data))

        return Tensor._from_op(out_data, (self,), backward)

    def silu(self) -> "Tensor":
        """SiLU / swish, the Llama MLP activation: ``x * sigmoid(x)``."""
        sig = 1.0 / (1.0 + np.exp(-self.data))
        out_data = self.data * sig

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * (sig + self.data * sig * (1.0 - sig)))

        return Tensor._from_op(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * mask)

        return Tensor._from_op(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * sign)

        return Tensor._from_op(out_data, (self,), backward)

    def clip(self, lo: float, hi: float) -> "Tensor":
        mask = (self.data >= lo) & (self.data <= hi)
        out_data = np.clip(self.data, lo, hi)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * mask)

        return Tensor._from_op(out_data, (self,), backward)

    def maximum(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)
        take_self = self.data >= other.data
        out_data = np.maximum(self.data, other.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * take_self)
            if other.requires_grad:
                other._accumulate(g * ~take_self)

        return Tensor._from_op(out_data, (self, other), backward)

    # -- reductions -------------------------------------------------------------

    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = np.asarray(g, dtype=np.float64)
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        return Tensor._from_op(out_data, (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        n = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / n)

    # -- shape ops ----------------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(*shape)
        orig_shape = self.data.shape

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(
                    np.asarray(g, dtype=np.float64).reshape(orig_shape)
                )

        return Tensor._from_op(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_t = tuple(axes) if axes else tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes_t)
        inverse = tuple(np.argsort(axes_t))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(
                    np.asarray(g, dtype=np.float64).transpose(inverse)
                )

        return Tensor._from_op(out_data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        out_data = np.swapaxes(self.data, a, b)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(
                    np.swapaxes(np.asarray(g, dtype=np.float64), a, b)
                )

        return Tensor._from_op(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, g)
                self._accumulate(full)

        return Tensor._from_op(out_data, (self,), backward)

    # -- graph execution ------------------------------------------------------------

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode accumulation from this node."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor with no graph")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    f"backward() without a gradient needs a scalar, got shape "
                    f"{self.data.shape}"
                )
            grad = np.ones_like(self.data)

        # iterative topological sort to avoid recursion limits on deep graphs
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def __repr__(self) -> str:
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.data.shape}, grad={self.requires_grad}{tag})"


# -- free functions -------------------------------------------------------------


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation."""
    tensors = [Tensor._wrap(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> None:
        g = np.asarray(g, dtype=np.float64)
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * g.ndim
                index[axis] = slice(lo, hi)
                t._accumulate(g[tuple(index)])

    return Tensor._from_op(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new axis."""
    tensors = [Tensor._wrap(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray) -> None:
        g = np.asarray(g, dtype=np.float64)
        for i, t in enumerate(tensors):
            if t.requires_grad:
                t._accumulate(np.take(g, i, axis=axis))

    return Tensor._from_op(out_data, tuple(tensors), backward)


def embedding(table: Tensor, token_ids: np.ndarray) -> Tensor:
    """Look up rows of ``table`` for integer ``token_ids``."""
    token_ids = np.asarray(token_ids, dtype=np.int64)
    out_data = table.data[token_ids]

    def backward(g: np.ndarray) -> None:
        if table.requires_grad:
            full = np.zeros_like(table.data)
            np.add.at(full, token_ids, g)
            table._accumulate(full)

    return Tensor._from_op(out_data, (table,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax with exact gradient."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            g = np.asarray(g, dtype=np.float64)
            dot = (g * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (g - dot))

    return Tensor._from_op(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax with exact gradient."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - logsum
    probs = np.exp(out_data)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            g = np.asarray(g, dtype=np.float64)
            x._accumulate(g - probs * g.sum(axis=axis, keepdims=True))

    return Tensor._from_op(out_data, (x,), backward)


def gather_last(x: Tensor, index: np.ndarray) -> Tensor:
    """Gather along the last axis: ``out[..., ] = x[..., index[...]]``.

    ``index`` must have the shape of ``x`` minus the last axis; used to pick
    per-token log-probabilities from the vocabulary axis.
    """
    index = np.asarray(index, dtype=np.int64)
    expanded = np.expand_dims(index, -1)
    out_data = np.take_along_axis(x.data, expanded, axis=-1).squeeze(-1)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            full = np.zeros_like(x.data)
            np.put_along_axis(full, expanded, np.expand_dims(g, -1), axis=-1)
            x._accumulate(full)

    return Tensor._from_op(out_data, (x,), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable select: gradient flows to the chosen branch."""
    condition = np.asarray(condition, dtype=bool)
    a = Tensor._wrap(a)
    b = Tensor._wrap(b)
    out_data = np.where(condition, a.data, b.data)

    def backward(g: np.ndarray) -> None:
        g = np.asarray(g, dtype=np.float64)
        if a.requires_grad:
            a._accumulate(np.where(condition, g, 0.0))
        if b.requires_grad:
            b._accumulate(np.where(condition, 0.0, g))

    return Tensor._from_op(out_data, (a, b), backward)
