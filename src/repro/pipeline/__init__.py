"""Async one-step-off RLHF pipeline with bounded staleness.

While the trainer consumes iteration *t*'s experience, the rollout engine
already generates iteration *t+1* on the last published policy — the
DistFlow / MindSpeed-RL relaxation of HybridFlow's synchronous dataflow,
built so that every existing correctness gate (DF1xx dataflow checks, TA2xx
trace audit, RC5xx race detection) still passes on the overlapped schedule.

* :class:`PipelineConfig` — staleness window, importance weighting, buffer.
* :class:`ExperienceBuffer` — bounded in-flight experience, version-tagged.
* :class:`AsyncPipelineDriver` — the loop; ``staleness_window=0`` is
  bit-exact with the synchronous trainers.
"""

from repro.pipeline.buffer import BufferFull, Experience, ExperienceBuffer
from repro.pipeline.config import PipelineConfig
from repro.pipeline.driver import AsyncPipelineDriver

__all__ = [
    "AsyncPipelineDriver",
    "BufferFull",
    "Experience",
    "ExperienceBuffer",
    "PipelineConfig",
]
