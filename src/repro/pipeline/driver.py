"""``AsyncPipelineDriver``: the one-step-off bounded-staleness RLHF loop.

The synchronous drivers (:mod:`repro.rlhf.trainers`) serialize every
iteration end to end: generate → score → update, with the rollout engine
idle while the trainer consumes its output and vice versa.  This driver
relaxes that barrier the way DistFlow / MindSpeed-RL do: while the trainer
consumes iteration *t*'s experience, the rollout engine is already
generating iteration *t+1* on the last *published* policy.

Semantics (``W = staleness_window``):

* batch *i* is generated under policy version ``max(0, i - W)`` and trained
  at version *i* — its staleness is ``min(i, W)``, never more;
* the experience buffer holds at most ``W + 1`` in-flight batches (the
  structural enforcement of the bound);
* stale batches get per-token truncated importance weights
  (:func:`repro.rlhf.losses.truncated_importance_weights`) so the PPO/GRPO
  surrogate stays sound off-policy;
* ``W = 0`` degenerates to exactly the synchronous interleave — same
  dispatches on the same data in the same per-worker order, so the run is
  bit-exact with ``RlhfTrainerBase.train`` (weights, sequences, and
  per-iteration metrics);
* weight hand-off goes through a
  :class:`~repro.hybrid_engine.WeightPublisher`: the trainer *publishes*
  after every optimizer step without blocking decode, the rollout engine
  *acquires* at generate-call boundaries, and both sides leave
  happens-before edges in the access log so the RC5xx race detector can
  prove the overlapped schedule free of torn reads.

The driver dispatches through the same worker-group primitives as the
synchronous trainers; the overlap materializes in the modeled schedule
(:func:`repro.runtime.timeline.build_timeline`): the generate record for
*t+1* precedes iteration *t*'s scoring/update records in the trace and
carries no dependency on them, so pools that only score or update overlap
it instead of idling — the Figure-3-style bubble collapses.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.data.batch import DataBatch
from repro.data.dataset import PromptDataset
from repro.hybrid_engine.publication import WeightPublisher
from repro.pipeline.buffer import Experience, ExperienceBuffer
from repro.pipeline.config import PipelineConfig
from repro.rlhf.core import AlgoType, compute_advantages
from repro.rlhf.losses import truncated_importance_weights
from repro.rlhf.trainers import RlhfTrainerBase
from repro.single_controller.access_log import READ, WRITE


class AsyncPipelineDriver:
    """Bounded-staleness overlap of rollout and training for PPO / GRPO."""

    def __init__(
        self,
        trainer: RlhfTrainerBase,
        config: Optional[PipelineConfig] = None,
        publisher: Optional[WeightPublisher] = None,
    ) -> None:
        self.trainer = trainer
        self.config = config or PipelineConfig()
        self.config.validate()
        if trainer.algo not in (AlgoType.PPO, AlgoType.GRPO):
            raise ValueError(
                f"async pipeline supports PPO and GRPO, not "
                f"{trainer.algo.value}"
            )
        # one source of truth for soundness constraints: the same DF108
        # findings `repro check` raises statically reject the config here
        from repro.analysis.dataflow import DataflowChecker

        report = DataflowChecker().check_pipeline(
            self.config, trainer.config, trainer.algo, actor=trainer.actor
        )
        errors = [f for f in report.findings if f.severity == "error"]
        if errors:
            raise ValueError(
                "pipeline config rejected by DF108: "
                + "; ".join(f.message for f in errors)
            )
        self.buffer = ExperienceBuffer(self.config.resolved_capacity)
        self.publisher = publisher or WeightPublisher(trainer.actor)
        self._next_gen = 0
        self.max_staleness_seen = 0

    # -- plumbing --------------------------------------------------------------------

    @property
    def iterations_trained(self) -> int:
        return len(self.trainer.history)

    def _controller(self):
        return getattr(self.trainer.actor, "controller", None)

    def _record_access(self, kind: str, resource: str, note: str) -> None:
        controller = self._controller()
        if controller is not None:
            controller.record_access(kind, resource, note=note)

    # -- rollout track ---------------------------------------------------------------

    def _rollout(self, prompts: DataBatch) -> None:
        """Generate batch ``self._next_gen`` under the active policy version.

        With ``stream_scoring`` the frozen-model scoring passes (reference
        log-probs, rewards) are dispatched as soon as generation finishes —
        at the rollout boundary instead of the train-step boundary — so in
        the modeled schedule they overlap the *next* rollout rather than
        sitting on the training critical path.  Both models are frozen, so
        the results are identical either way.
        """
        index = self._next_gen
        version = self.publisher.acquire()
        trainer = self.trainer
        if trainer.algo is AlgoType.GRPO:
            prompts = prompts.repeat(trainer.config.group_size)
        controller = self._controller()
        tracer = getattr(controller, "tracer", None)
        if tracer is None:
            batch = self._generate_and_score(prompts)
        else:
            with tracer.span(
                f"pipeline.rollout[{index}]",
                category="pipeline",
                iteration=index,
                policy_version=version,
            ):
                batch = self._generate_and_score(prompts)
        self._record_access(
            WRITE,
            f"pipeline/experience[{index}]",
            note=f"rollout buffers iteration {index} at version {version}",
        )
        self.buffer.put(index, version, batch)
        if controller is not None and controller.metrics is not None:
            controller.metrics.counter(
                "repro_pipeline_rollouts_total",
                "Rollouts completed by the async pipeline",
            ).inc()
        self._next_gen += 1

    def _generate_and_score(self, prompts: DataBatch) -> DataBatch:
        trainer = self.trainer
        gen = trainer.actor.generate_sequences(prompts).get()
        if not self.config.stream_scoring:
            return gen
        ref = trainer.reference.compute_ref_log_prob(gen)
        scores = trainer.reward.compute_reward(gen)
        return gen.union(ref.get()).union(scores.get())

    # -- training track --------------------------------------------------------------

    def _train_one(self) -> Dict[str, Any]:
        """Consume the oldest buffered batch; mirrors ``run_step`` exactly."""
        trainer = self.trainer
        controller = self._controller()
        tracer = getattr(controller, "tracer", None)
        metrics = getattr(controller, "metrics", None)
        iteration = len(trainer.history)
        algo = trainer.algo.name.lower()
        started = controller.clock.now if controller is not None else 0.0
        if tracer is None:
            result = self._step_from_buffer(iteration)
        else:
            with tracer.span(
                f"iteration[{iteration}]",
                category="iteration",
                algo=algo,
                iteration=iteration,
            ):
                result = self._step_from_buffer(iteration)
        if metrics is not None:
            metrics.counter(
                "repro_iterations_total", "RLHF iterations completed", algo=algo
            ).inc()
            metrics.histogram(
                "repro_iteration_seconds",
                "Simulated seconds per RLHF iteration",
                algo=algo,
            ).observe(controller.clock.now - started)
        trainer.history.append(result)
        # the optimizer step produced a new policy version; stage it for the
        # rollout engine without blocking its decode loop
        self.publisher.publish(len(trainer.history))
        return result

    def _step_from_buffer(self, iteration: int) -> Dict[str, Any]:
        trainer = self.trainer
        cfg = trainer.config
        self._record_access(
            READ,
            f"pipeline/experience[{iteration}]",
            note=f"trainer consumes iteration {iteration}",
        )
        entry = self.buffer.pop(iteration)
        staleness = iteration - entry.version
        self.max_staleness_seen = max(self.max_staleness_seen, staleness)

        batch = self._prepare(entry)
        if trainer.algo is AlgoType.PPO:
            batch = compute_advantages(
                batch,
                AlgoType.PPO,
                kl_coef=cfg.kl_coef,
                gamma=cfg.gamma,
                lam=cfg.lam,
                whiten_advantages=cfg.whiten_advantages,
            )
        else:
            batch = compute_advantages(
                batch, AlgoType.GRPO, group_size=cfg.group_size
            )
        batch = self._attach_importance_weights(batch, staleness)

        metrics: Dict[str, Any] = {"score_mean": float(batch["scores"].mean())}
        for _ in range(cfg.ppo_epochs):
            for mini in trainer._minibatches(batch):
                if trainer.algo is AlgoType.PPO:
                    critic_metrics = trainer.critic.update_critic(
                        mini, loss_func="ppo"
                    ).get()
                    actor_metrics = trainer.actor.update_actor(
                        mini, loss_func="ppo"
                    ).get()
                else:
                    actor_metrics = trainer.actor.update_actor(
                        mini, loss_func="grpo", kl_coef=cfg.kl_coef
                    ).get()
            if trainer.algo is AlgoType.PPO:
                metrics.update(
                    {f"critic/{k}": v for k, v in critic_metrics.items()}
                )
            metrics.update({f"actor/{k}": v for k, v in actor_metrics.items()})
        if staleness > 0:
            # extra keys only off-policy: the W=0 history stays bit-equal
            # to the synchronous trainer's
            metrics["pipeline/staleness"] = staleness
            metrics["pipeline/policy_version"] = entry.version
        return metrics

    def _prepare(self, entry: Experience) -> DataBatch:
        """Stage-2 experience preparation, in the synchronous dispatch order.

        For streamed entries the frozen-model columns (``ref_log_probs``,
        ``scores``) already arrived at rollout time; only the anchor-policy
        log-probs (always recomputed *now*, under the train-time policy —
        they are the importance-weight anchor) and the critic values remain.
        """
        trainer = self.trainer
        cfg = trainer.config
        gen = entry.batch
        streamed = "scores" in gen
        if trainer.algo is AlgoType.PPO:
            values = trainer.critic.compute_values(gen)
            if streamed:
                batch = self._anchor_log_probs(gen).union(values.get())
            else:
                batch = trainer._prepare_common(gen).union(values.get())
        else:
            if streamed:
                batch = self._anchor_log_probs(gen)
            else:
                batch = trainer._prepare_common(gen)
        return batch

    def _anchor_log_probs(self, gen: DataBatch) -> DataBatch:
        trainer = self.trainer
        if trainer.config.recompute_log_probs:
            logp = trainer.actor.compute_log_prob(gen)
            return gen.union(logp.get())
        return gen.union(
            DataBatch({"log_probs": gen["old_log_probs"]}, meta=gen.meta)
        )

    def _attach_importance_weights(
        self, batch: DataBatch, staleness: int
    ) -> DataBatch:
        if staleness == 0 or not self.config.importance_weighting:
            return batch
        mask = batch["response_mask"] if "response_mask" in batch else None
        weights = truncated_importance_weights(
            batch["log_probs"],
            batch["old_log_probs"],
            clip=self.config.iw_clip,
            response_mask=mask,
        )
        return batch.union(
            DataBatch({"importance_weights": weights}, meta=batch.meta)
        )

    # -- the loop --------------------------------------------------------------------

    def train(
        self, dataset: PromptDataset, n_iterations: int, batch_size: int
    ) -> List[Dict[str, Any]]:
        """Run ``n_iterations`` more iterations with bounded-staleness overlap.

        Prompt batches are consumed in absolute iteration order: a driver
        restored mid-overlap fast-forwards the deterministic dataset
        iterator past the batches it already generated, so the resumed run
        is bit-exact with an uninterrupted one.
        """
        target = len(self.trainer.history) + n_iterations
        if self._next_gen > target:
            raise ValueError(
                f"{self._next_gen} rollouts already buffered but only "
                f"{target} total iterations requested"
            )
        batches = dataset.iter_batches(batch_size, epochs=10**6)
        for _ in range(self._next_gen):
            next(batches)
        while len(self.trainer.history) < target:
            horizon = min(
                len(self.trainer.history) + self.config.staleness_window,
                target - 1,
            )
            while self._next_gen <= horizon:
                self._rollout(next(batches))
            self._train_one()
        return self.trainer.history

    # -- reporting -------------------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        return {
            "algo": self.trainer.algo.value,
            "iterations": len(self.trainer.history),
            "staleness_window": self.config.staleness_window,
            "max_staleness_seen": self.max_staleness_seen,
            "importance_weighting": self.config.importance_weighting,
            "stream_scoring": self.config.stream_scoring,
            "buffer_capacity": self.buffer.capacity,
            "buffer_peak_occupancy": self.buffer.peak_occupancy,
            "pending_rollouts": len(self.buffer),
            "publications": self.publisher.publications,
            "published_bytes": self.publisher.bytes_published,
            "active_policy_version": self.publisher.active_version,
        }

    # -- checkpointing ---------------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {
            "next_gen": self._next_gen,
            "max_staleness_seen": self.max_staleness_seen,
            "buffer": self.buffer.state_dict(),
            "publisher": self.publisher.state_dict(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self._next_gen = int(state["next_gen"])
        self.max_staleness_seen = int(state["max_staleness_seen"])
        self.buffer.load_state_dict(state["buffer"])
        self.publisher.load_state_dict(state["publisher"])

    def save_checkpoint(self, directory: str) -> None:
        """Atomic checkpoint of workers + trainer + in-flight pipeline state.

        A save taken *mid-overlap* — rollouts buffered ahead of the trainer
        — captures the buffered experience and both cursors, so the restore
        resumes with the same staleness schedule.
        """
        controller = self._controller()
        if controller is None:
            raise RuntimeError("checkpointing needs a controller-built system")
        controller.save_checkpoint(
            directory,
            extra={
                "trainer": self.trainer.state_dict(),
                "pipeline": self.state_dict(),
            },
        )

    def load_checkpoint(self, directory: str) -> Dict[str, Any]:
        controller = self._controller()
        if controller is None:
            raise RuntimeError("checkpointing needs a controller-built system")
        manifest = controller.load_checkpoint(directory)
        extra = manifest.get("extra") or {}
        self.trainer.load_state_dict(extra["trainer"])
        self.load_state_dict(extra["pipeline"])
        return manifest


__all__ = ["AsyncPipelineDriver"]
