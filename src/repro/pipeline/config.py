"""Configuration of the bounded-staleness async RLHF pipeline."""

from __future__ import annotations

import dataclasses
from typing import Optional


@dataclasses.dataclass(frozen=True)
class PipelineConfig:
    """How far the rollout engine may run ahead of the trainer.

    Attributes:
        staleness_window: Maximum iterations the behaviour policy may lag
            the trained policy.  ``0`` degenerates to today's synchronous
            loop (and is bit-exact with it); ``1`` is classic one-step-off
            overlap; larger windows absorb generation-time jitter at the
            price of more off-policy drift.
        importance_weighting: Attach per-token truncated importance weights
            (:func:`repro.rlhf.losses.truncated_importance_weights`) to
            stale batches so the PPO/GRPO surrogate stays sound off-policy.
            Disabling it with ``staleness_window > 0`` is rejected by the
            ``DF108`` dataflow rule.
        iw_clip: Truncation bound for the importance ratio (V-trace's
            rho-bar); must be ``>= 1`` so on-policy tokens are never scaled.
        buffer_capacity: Slots in the experience buffer.  ``None`` sizes it
            to the minimum the window needs (``staleness_window + 1``).
        stream_scoring: Dispatch frozen-model scoring (reference log-probs
            and rewards) right after each rollout finishes instead of at
            the train-step boundary, so scoring overlaps the next rollout.
            Numerically inert — both models are frozen — but it moves the
            scoring work off the training critical path in the modeled
            schedule.
    """

    staleness_window: int = 1
    importance_weighting: bool = True
    iw_clip: float = 2.0
    buffer_capacity: Optional[int] = None
    stream_scoring: bool = False

    @property
    def resolved_capacity(self) -> int:
        """Buffer slots actually allocated (window + 1 when unset)."""
        if self.buffer_capacity is not None:
            return self.buffer_capacity
        return self.staleness_window + 1

    def validate(self) -> None:
        """Raise on configurations that could never run at all.

        Soundness problems a run *could* limp through (stale batches with
        importance weighting disabled, a window exceeding the buffer) are
        the :class:`~repro.analysis.DataflowChecker`'s ``DF108`` findings —
        one shared source of truth the driver also consults at build time.
        """
        if self.staleness_window < 0:
            raise ValueError(
                f"staleness_window must be >= 0, got {self.staleness_window}"
            )
        if self.resolved_capacity < 1:
            raise ValueError(
                f"buffer_capacity must be >= 1, got {self.buffer_capacity}"
            )
        if self.iw_clip < 1.0:
            raise ValueError(f"iw_clip must be >= 1.0, got {self.iw_clip}")


__all__ = ["PipelineConfig"]
