"""Experience buffer keyed by policy version for the async pipeline.

Each entry is one iteration's generated experience, tagged with the policy
version that *behaved* (generated) it.  The buffer's capacity bounds how far
the rollout engine can run ahead of the trainer — the structural enforcement
of the staleness window.  Entries serialize losslessly (dtype-preserving),
so a checkpoint taken mid-overlap restores the in-flight experience and the
resumed run is bit-exact with an uninterrupted one.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List

import numpy as np

from repro.data.batch import LINEAGE_KEY, DataBatch


class BufferFull(RuntimeError):
    """The rollout engine ran further ahead than the buffer allows."""


@dataclasses.dataclass
class Experience:
    """One iteration's rollout: the batch plus its behaviour-policy tag."""

    index: int
    version: int
    batch: DataBatch


class ExperienceBuffer:
    """Bounded store of in-flight experience, indexed by iteration."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: Dict[int, Experience] = {}
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._entries)

    def indices(self) -> List[int]:
        return sorted(self._entries)

    def put(self, index: int, version: int, batch: DataBatch) -> None:
        if len(self._entries) >= self.capacity:
            raise BufferFull(
                f"experience buffer full ({self.capacity} slots, pending "
                f"{self.indices()}); the staleness window cannot exceed "
                "capacity - 1"
            )
        if index in self._entries:
            raise ValueError(f"iteration {index} is already buffered")
        self._entries[index] = Experience(index, version, batch)
        self.peak_occupancy = max(self.peak_occupancy, len(self._entries))

    def pop(self, index: int) -> Experience:
        try:
            return self._entries.pop(index)
        except KeyError:
            raise KeyError(
                f"iteration {index} not buffered; have {self.indices()}"
            ) from None

    def version_of(self, index: int) -> int:
        return self._entries[index].version

    # -- checkpointing ---------------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """JSON-sanitizable snapshot preserving every column's exact dtype."""
        entries = []
        for index in self.indices():
            entry = self._entries[index]
            columns = {
                name: {
                    "data": arr.tolist(),
                    "dtype": str(arr.dtype),
                    "shape": list(arr.shape),
                }
                for name, arr in entry.batch.tensors.items()
            }
            meta = {
                k: v for k, v in entry.batch.meta.items() if k != LINEAGE_KEY
            }
            entries.append(
                {
                    "index": entry.index,
                    "version": entry.version,
                    "columns": columns,
                    "meta": meta,
                }
            )
        return {"capacity": self.capacity, "entries": entries}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore buffered experience bit-exactly.

        Lineage meta is *not* restored: the saved record seqs referenced the
        pre-restart trace and would be dangling edges in the recovered
        controller's happens-before graph.
        """
        self.capacity = int(state["capacity"])
        self._entries = {}
        for raw in state["entries"]:
            columns = {
                name: np.asarray(
                    col["data"], dtype=np.dtype(col["dtype"])
                ).reshape(col["shape"])
                for name, col in raw["columns"].items()
            }
            batch = DataBatch(columns, meta=dict(raw["meta"]))
            index = int(raw["index"])
            self._entries[index] = Experience(
                index=index, version=int(raw["version"]), batch=batch
            )
        self.peak_occupancy = max(self.peak_occupancy, len(self._entries))


__all__ = ["BufferFull", "Experience", "ExperienceBuffer"]
