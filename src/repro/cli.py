"""Command-line interface for the analytical tools.

Five subcommands, mirroring the evaluation's workflows:

* ``throughput`` — compare HybridFlow and the baselines on one scenario
  (one row of Figures 9-11).
* ``map`` — run the auto device-mapping algorithm (§6) and print the chosen
  placement, parallel strategies, and iteration breakdown.
* ``transition`` — Table 2's overhead algebra plus estimated transition
  time for a given actor configuration.
* ``sweep-gen`` — Figure 15's generation-TP sweep for one model.
* ``map-hetero`` — device mapping over heterogeneous zones (the extension
  §6 sketches).
* ``faults`` — run a tiny functional PPO job under injected failures with
  automatic recovery (§9) and report MTTR plus the checkpoint-interval
  goodput trade-off.
* ``trace`` — run the tiny functional PPO job (optionally fault-injected)
  and export a Chrome ``trace_event`` JSON with one track per pool
  (Figure 3) plus the runtime-span track, verifying the exported busy/idle
  fractions against the in-memory timeline accounting.
* ``metrics`` — same run, dumped as Prometheus text exposition.
* ``fleet`` — gang-schedule several tenant RLHF jobs onto one shared
  simulated cluster under injected machine/rack kills, with elastic
  resizing, checkpoint-and-evict preemption, and per-job MTTR/goodput/
  fairness accounting (``repro.fleet``).
* ``serve`` — run the functional continuous-batching rollout server
  (paged KV blocks, priority scheduling, preempt-and-recompute) on a
  synthetic request stream, report latency/SLO statistics, and cross-check
  the measured schedule against the analytic model of
  ``repro.perf.continuous_batching``.

Examples::

    python -m repro.cli throughput --model llama-7b --machines 2
    python -m repro.cli map --model llama-70b --machines 16 --algo ppo
    python -m repro.cli transition --model llama-13b --tp 8 --dp 2 --gen-tp 2
    python -m repro.cli sweep-gen --model llama-13b
    python -m repro.cli map-hetero --zone a100:A100-80GB:1 --zone h100:H100-80GB:1
    python -m repro.cli faults --kill-machine 0 --at-step 30 --iterations 6
    python -m repro.cli trace --out run.json --kill-device 1 --at-step 30
    python -m repro.cli metrics --out metrics.prom
    python -m repro.cli serve --requests 16 --slots 4 --blocks 12
    python -m repro.cli fleet --jobs 3 --kill-machine 0 --kill-machine 2
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.baselines import ALL_SYSTEMS
from repro.baselines.common import InfeasibleScenario
from repro.config import (
    GPU_SPECS,
    MODEL_SPECS,
    ClusterSpec,
    GenParallelConfig,
    ParallelConfig,
    RlhfWorkload,
)
from repro.hybrid_engine.overhead import EngineKind, transition_overhead
from repro.mapping import map_dataflow
from repro.perf.generation import generation_latency
from repro.perf.transition import transition_time
from repro.rlhf.core import AlgoType

_MODELS_BY_ALGO = {
    AlgoType.PPO: ("actor", "critic", "reference", "reward"),
    AlgoType.REMAX: ("actor", "reference", "reward"),
    AlgoType.SAFE_RLHF: ("actor", "critic", "reference", "reward", "cost"),
    AlgoType.GRPO: ("actor", "reference", "reward"),
}


def _common_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model",
        default="llama-7b",
        choices=sorted(MODEL_SPECS),
        help="Llama-class model size for every role",
    )
    parser.add_argument(
        "--machines",
        type=int,
        default=2,
        help="number of 8-GPU machines in the simulated cluster",
    )
    parser.add_argument(
        "--algo",
        default="ppo",
        choices=[a.value for a in AlgoType],
        help="RLHF algorithm (dataflow variant)",
    )
    parser.add_argument(
        "--batch", type=int, default=1024, help="global prompt batch size"
    )
    parser.add_argument(
        "--prompt-length", type=int, default=1024, help="prompt tokens"
    )
    parser.add_argument(
        "--response-length", type=int, default=1024, help="response tokens"
    )


def _workload(args: argparse.Namespace) -> RlhfWorkload:
    return RlhfWorkload(
        prompt_length=args.prompt_length,
        response_length=args.response_length,
        global_batch_size=args.batch,
    )


def _specs(args: argparse.Namespace):
    algo = AlgoType(args.algo)
    return algo, {
        role: MODEL_SPECS[args.model] for role in _MODELS_BY_ALGO[algo]
    }


def cmd_throughput(args: argparse.Namespace) -> int:
    algo, specs = _specs(args)
    cluster = ClusterSpec(n_machines=args.machines)
    wl = _workload(args)
    print(
        f"{algo.value} / {args.model} on {cluster.n_gpus} GPUs "
        f"(batch {wl.global_batch_size}, {wl.prompt_length}/{wl.response_length} tokens)"
    )
    results = {}
    for system, estimate_fn in ALL_SYSTEMS.items():
        try:
            est = estimate_fn(algo, specs, cluster, wl)
            results[system] = est
            b = est.breakdown
            print(
                f"  {system:15s} {est.throughput(wl):>10,.0f} tok/s  "
                f"(iter {b.total:7.1f}s: gen {b.generation:.1f} / "
                f"prep {b.preparation:.1f} / train {b.training:.1f} / "
                f"transition {b.transition:.2f})"
            )
        except InfeasibleScenario as exc:
            print(f"  {system:15s} {'OOM':>10}  ({exc})")
    if "HybridFlow" in results:
        hf = results["HybridFlow"].throughput(wl)
        for system, est in results.items():
            if system != "HybridFlow":
                print(f"  speedup vs {system}: {hf / est.throughput(wl):.2f}x")
    return 0


def cmd_map(args: argparse.Namespace) -> int:
    algo, specs = _specs(args)
    cluster = ClusterSpec(n_machines=args.machines)
    wl = _workload(args)
    result = map_dataflow(algo, specs, cluster, wl)
    print(f"best mapping for {algo.value} / {args.model} on {cluster.n_gpus} GPUs:")
    print(f"  {result.describe()}")
    for model, choice in result.strategies.items():
        gen = (
            f", generation tp={choice.gen_tp} pp={choice.gen_pp}"
            if choice.gen_tp
            else ""
        )
        print(f"    {model:9s} {choice.parallel}{gen}")
    b = result.breakdown
    print(
        f"  iteration {b.total:.1f}s "
        f"(gen {b.generation:.1f} / prep {b.preparation:.1f} / "
        f"train {b.training:.1f} / transition {b.transition:.2f})"
    )
    print(f"  throughput {b.throughput(wl):,.0f} tokens/sec")
    return 0


def cmd_transition(args: argparse.Namespace) -> int:
    spec = MODEL_SPECS[args.model]
    cluster = ClusterSpec(n_machines=args.machines)
    train = ParallelConfig(pp=args.pp, tp=args.tp, dp=args.dp)
    gen = GenParallelConfig.derive(train, args.gen_pp, args.gen_tp)
    print(
        f"{args.model}: training {train} -> generation "
        f"{args.gen_pp}-{args.gen_tp} (micro-DP {gen.micro_dp})"
    )
    model_bytes = spec.param_bytes()
    for kind in EngineKind:
        if kind is EngineKind.DS_CHAT:
            t = transition_time(
                kind,
                spec,
                cluster,
                ParallelConfig(1, 1, train.world_size),
                GenParallelConfig(1, 1, 1),
            )
            o = transition_overhead(
                kind, ParallelConfig(1, 1, train.world_size), GenParallelConfig(1, 1, 1)
            )
        else:
            t = transition_time(kind, spec, cluster, train, gen)
            o = transition_overhead(kind, train, gen)
        print(
            f"  {kind.value:13s} time={t:8.3f}s  "
            f"comm={o.comm_bytes(model_bytes) / 1e9:7.2f} GB/GPU  "
            f"peak={o.peak_memory_bytes(model_bytes) / 1e9:6.2f} GB  "
            f"redundant={o.redundancy_bytes(model_bytes) / 1e9:5.2f} GB"
        )
    return 0


def cmd_sweep_gen(args: argparse.Namespace) -> int:
    spec = MODEL_SPECS[args.model]
    cluster = ClusterSpec(n_machines=args.machines)
    wl = _workload(args)
    train = ParallelConfig(pp=args.pp, tp=args.tp, dp=args.dp)
    print(
        f"{args.model} generation sweep on {cluster.n_gpus} GPUs "
        f"(training {train}, reserved {args.reserved_gb} GB/GPU)"
    )
    best: Optional[tuple] = None
    tg = 1
    while tg <= train.tp:
        gen = GenParallelConfig.derive(train, 1, tg)
        est = generation_latency(
            spec,
            cluster,
            tg,
            1,
            n_replicas=train.dp * gen.micro_dp,
            workload=wl,
            reserved_bytes=args.reserved_gb * 1e9,
        )
        trans = transition_time(EngineKind.HYBRIDFLOW, spec, cluster, train, gen)
        total = est.total + trans
        print(
            f"  t_g={tg}: generation {est.total:8.1f}s + transition "
            f"{trans:6.3f}s = {total:8.1f}s "
            f"(waves={est.n_waves}, concurrent={est.concurrent_sequences})"
        )
        if best is None or total < best[1]:
            best = (tg, total)
        tg *= 2
    assert best is not None
    print(f"  -> best generation TP size: t_g={best[0]}")
    return 0


def cmd_map_hetero(args: argparse.Namespace) -> int:
    from repro.mapping.heterogeneous import (
        ClusterZone,
        map_dataflow_heterogeneous,
    )

    algo, specs = _specs(args)
    wl = _workload(args)
    zone_args = args.zones or ["a100:A100-80GB:1", "h100:H100-80GB:1"]
    zones = []
    for entry in zone_args:
        try:
            name, gpu_name, machines = entry.split(":")
            gpu = GPU_SPECS[gpu_name]
        except (ValueError, KeyError):
            print(
                f"bad --zone {entry!r}; expected NAME:GPU:MACHINES with GPU "
                f"in {sorted(GPU_SPECS)}",
                file=sys.stderr,
            )
            return 2
        zones.append(
            ClusterZone(name, ClusterSpec(n_machines=int(machines), gpu=gpu))
        )
    result = map_dataflow_heterogeneous(algo, specs, zones, wl)
    total = sum(z.n_gpus for z in zones)
    print(
        f"best heterogeneous mapping for {algo.value} / {args.model} over "
        f"{total} GPUs in {len(zones)} zones:"
    )
    print(f"  {result.describe()}")
    for model, choice in result.strategies.items():
        print(
            f"    {model:9s} {choice.parallel} on zone "
            f"{result.zone_of(model)}"
        )
    b = result.breakdown
    print(f"  iteration {b.total:.1f}s, throughput {b.throughput(wl):,.0f} tok/s")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    # Functional-path imports stay local so the analytic subcommands keep
    # their fast import time.
    import tempfile

    from repro.config import GenParallelConfig as GenPC
    from repro.data import PromptDataset, SyntheticPreferenceTask
    from repro.faults import FaultInjector, FaultPlan, RetryPolicy
    from repro.models.tinylm import TinyLMConfig
    from repro.perf import goodput_vs_interval, optimal_checkpoint_interval
    from repro.rlhf.trainers import TrainerConfig
    from repro.runtime import (
        ModelAssignment,
        PlacementPlan,
        build_rlhf_system,
        train_with_recovery,
    )

    cfg = TinyLMConfig(
        n_layers=2,
        hidden_size=32,
        n_heads=4,
        ffn_hidden_size=48,
        vocab_size=16,
        max_seq_len=32,
    )
    task = SyntheticPreferenceTask(vocab_size=16, target_token=7)
    par = ParallelConfig(pp=1, tp=2, dp=1)
    spec = ClusterSpec(
        n_machines=args.machines, gpus_per_machine=args.gpus_per_machine
    )

    def build(cluster=None):
        plan = PlacementPlan(
            pools={"main": 2, "r": 1},
            assignments={
                "actor": ModelAssignment("main", par, GenPC.derive(par, 1, 1)),
                "critic": ModelAssignment("main", par),
                "reference": ModelAssignment("main", par),
                "reward": ModelAssignment("r", ParallelConfig(1, 1, 1)),
            },
        )
        return build_rlhf_system(
            AlgoType.PPO,
            plan,
            cfg,
            cluster_spec=spec,
            trainer_config=TrainerConfig(kl_coef=0.01, seed=7),
            reward_fn=task.reward,
            max_new_tokens=6,
            lr=5e-3,
            seed=7,
            cluster=cluster,
        )

    fault_plan = FaultPlan()
    if args.kill_machine is not None:
        if not 0 <= args.kill_machine < spec.n_machines:
            print(
                f"--kill-machine {args.kill_machine} out of range for "
                f"{spec.n_machines} machine(s)",
                file=sys.stderr,
            )
            return 2
        fault_plan.kill_machine(args.kill_machine, at_step=args.at_step)
    if args.kill_device is not None:
        if not 0 <= args.kill_device < spec.n_gpus:
            print(
                f"--kill-device {args.kill_device} out of range for "
                f"{spec.n_gpus} GPU(s)",
                file=sys.stderr,
            )
            return 2
        fault_plan.kill_device(args.kill_device, at_step=args.at_step)
    if args.transients:
        fault_plan.transient(at_step=args.at_step, count=args.transients)
    injector = FaultInjector(fault_plan)

    print(
        f"fault-injected PPO on {spec.n_gpus} simulated GPUs "
        f"({args.iterations} iterations, checkpoint every {args.ckpt_every}, "
        f"{len(fault_plan)} scheduled fault(s))"
    )
    dataset = PromptDataset(n_prompts=128, prompt_length=4, vocab_size=16, seed=1)
    with tempfile.TemporaryDirectory() as ckpt_dir:
        try:
            system, history, report = train_with_recovery(
                build,
                dataset,
                n_iterations=args.iterations,
                batch_size=8,
                checkpoint_dir=ckpt_dir,
                checkpoint_every=args.ckpt_every,
                injector=injector,
                retry_policy=RetryPolicy(seed=args.seed),
            )
        except (RuntimeError, ValueError) as exc:  # worker lost, exhausted, bad args
            print(f"unrecoverable failure: {exc}", file=sys.stderr)
            return 1
    print("  rewards:", [round(h["score_mean"], 3) for h in history])
    for line in report.summary_lines():
        print(line)
    print(
        f"  injector: {injector.stats.devices_killed} device(s) killed, "
        f"{injector.stats.transients_injected} transient(s), "
        f"{injector.stats.retries_observed} retry(ies)"
    )

    overhead = report.checkpoint_time + report.total_downtime
    useful = max(report.total_time - overhead, 1e-9)
    iter_time = useful / max(len(history) + report.total_lost_iterations, 1)
    ckpt_time = report.checkpoint_time / max(report.checkpoints_saved, 1)
    restore = (
        report.events[0].restore_time if report.events else ckpt_time * 2.0
    )
    reinit = report.events[0].reinit_time if report.events else 2.0
    print(f"\nanalytic model (MTBF {args.mtbf:.0f}s):")
    interval = optimal_checkpoint_interval(max(ckpt_time, 1e-9), args.mtbf)
    print(
        f"  Young optimal interval: {interval:.1f}s of work "
        f"(~{interval / iter_time:.1f} iterations)"
    )
    print("  goodput vs checkpoint interval:")
    for k, goodput in goodput_vs_interval(
        iter_time, ckpt_time, restore, reinit, args.mtbf
    ):
        print(f"    every {k:3d} iter(s): {goodput:.4f}")
    return 0


def _run_tiny_ppo(args: argparse.Namespace):
    """The tiny functional PPO job the observability subcommands profile.

    Mirrors ``cmd_faults``'s system (2-layer TinyLM, pools main=2/r=1) with
    an optional single device kill, so traces and metrics can be inspected
    both for clean runs and across a fault-and-recovery cycle.

    Returns ``(system, history, report)``.
    """
    import tempfile

    from repro.config import GenParallelConfig as GenPC
    from repro.data import PromptDataset, SyntheticPreferenceTask
    from repro.faults import FaultInjector, FaultPlan, RetryPolicy
    from repro.models.tinylm import TinyLMConfig
    from repro.rlhf.trainers import TrainerConfig
    from repro.runtime import (
        ModelAssignment,
        PlacementPlan,
        build_rlhf_system,
        train_with_recovery,
    )

    cfg = TinyLMConfig(
        n_layers=2,
        hidden_size=32,
        n_heads=4,
        ffn_hidden_size=48,
        vocab_size=16,
        max_seq_len=32,
    )
    task = SyntheticPreferenceTask(vocab_size=16, target_token=7)
    par = ParallelConfig(pp=1, tp=2, dp=1)
    spec = ClusterSpec(
        n_machines=args.machines, gpus_per_machine=args.gpus_per_machine
    )

    def build(cluster=None):
        plan = PlacementPlan(
            pools={"main": 2, "r": 1},
            assignments={
                "actor": ModelAssignment("main", par, GenPC.derive(par, 1, 1)),
                "critic": ModelAssignment("main", par),
                "reference": ModelAssignment("main", par),
                "reward": ModelAssignment("r", ParallelConfig(1, 1, 1)),
            },
        )
        return build_rlhf_system(
            AlgoType.PPO,
            plan,
            cfg,
            cluster_spec=spec,
            trainer_config=TrainerConfig(kl_coef=0.01, seed=7),
            reward_fn=task.reward,
            max_new_tokens=6,
            lr=5e-3,
            seed=7,
            cluster=cluster,
        )

    fault_plan = FaultPlan()
    if args.kill_device is not None:
        if not 0 <= args.kill_device < spec.n_gpus:
            raise ValueError(
                f"--kill-device {args.kill_device} out of range for "
                f"{spec.n_gpus} GPU(s)"
            )
        fault_plan.kill_device(args.kill_device, at_step=args.at_step)
    injector = FaultInjector(fault_plan) if len(fault_plan) else None

    dataset = PromptDataset(n_prompts=128, prompt_length=4, vocab_size=16, seed=1)
    with tempfile.TemporaryDirectory() as ckpt_dir:
        system, history, report = train_with_recovery(
            build,
            dataset,
            n_iterations=args.iterations,
            batch_size=8,
            checkpoint_dir=ckpt_dir,
            checkpoint_every=args.ckpt_every,
            injector=injector,
            retry_policy=RetryPolicy(seed=args.seed),
        )
    return system, history, report


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.observability import (
        chrome_trace,
        pool_fractions_from_trace,
        write_chrome_trace,
    )
    from repro.runtime.timeline import build_timeline

    try:
        system, history, report = _run_tiny_ppo(args)
    except (RuntimeError, ValueError) as exc:
        print(f"unrecoverable failure: {exc}", file=sys.stderr)
        return 1
    controller = system.controller
    timeline = build_timeline(controller)
    doc = chrome_trace(timeline=timeline, spans=controller.tracer.spans)
    if args.out:
        # the exporter serializes through the json_safe sanitizer; a raw
        # json.dumps here could leak numpy scalars into the trace file
        out = write_chrome_trace(
            args.out, timeline=timeline, spans=controller.tracer.spans
        )
        print(f"wrote {len(doc['traceEvents'])} trace events to {out}")
    print(
        f"{len(controller.tracer.spans)} spans "
        f"({', '.join(f'{k}={v}' for k, v in controller.tracer.counts_by_category().items())})"
    )
    if report.n_failures:
        print(
            f"run recovered from {report.n_failures} failure(s); trace spans "
            "the faulted run, the recovery phases, and the resumed run"
        )

    # verify the exported file against the in-memory Timeline accounting
    fractions = pool_fractions_from_trace(doc)
    ok = True
    print("per-pool busy/idle (exported trace vs Timeline):")
    for pool in timeline.pools():
        expected_busy = timeline.busy_time(pool)
        expected_idle = timeline.idle_fraction(pool)
        got = fractions.get(pool, {"busy": -1.0, "idle_fraction": -1.0})
        match = (
            abs(got["busy"] - expected_busy) < 1e-6
            and abs(got["idle_fraction"] - expected_idle) < 1e-6
        )
        ok = ok and match
        print(
            f"  {pool:8s} busy {got['busy']:8.2f}s vs {expected_busy:8.2f}s, "
            f"idle {got['idle_fraction'] * 100:5.1f}% vs "
            f"{expected_idle * 100:5.1f}% "
            f"[{'ok' if match else 'MISMATCH'}]"
        )
    if not ok:
        print("trace does not match timeline accounting", file=sys.stderr)
        return 1
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    from repro.observability import collect_system_metrics

    try:
        system, history, report = _run_tiny_ppo(args)
    except (RuntimeError, ValueError) as exc:
        print(f"unrecoverable failure: {exc}", file=sys.stderr)
        return 1
    registry = collect_system_metrics(system.controller)
    text = registry.render_prometheus()
    if args.out:
        import pathlib

        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text)
        print(f"wrote {len(registry)} series to {out}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _observability_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--machines", type=int, default=2, help="simulated machines")
    p.add_argument(
        "--gpus-per-machine",
        type=int,
        default=4,
        help="GPUs per simulated machine (spare capacity hosts re-placement)",
    )
    p.add_argument("--iterations", type=int, default=3, help="PPO iterations")
    p.add_argument(
        "--ckpt-every", type=int, default=1, help="checkpoint interval"
    )
    p.add_argument(
        "--kill-device",
        type=int,
        default=None,
        metavar="RANK",
        help="kill one GPU at --at-step (exercise the recovery path)",
    )
    p.add_argument(
        "--at-step",
        type=int,
        default=30,
        help="trace sequence number at which the kill arms",
    )
    p.add_argument("--seed", type=int, default=0, help="retry-backoff jitter seed")
    p.add_argument("--out", default=None, help="output file path")


def cmd_serve(args: argparse.Namespace) -> int:
    # Functional-path imports stay local so the analytic subcommands keep
    # their fast import time.
    import numpy as np

    from repro.models.tinylm import TinyLM, TinyLMConfig
    from repro.perf.continuous_batching import (
        continuous_schedule_stats,
        sample_response_lengths,
    )
    from repro.serving import RolloutServer, ServingConfig, static_batch_steps

    if args.priority_levels < 1:
        print("--priority-levels must be >= 1", file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    cfg = TinyLMConfig(
        n_layers=2,
        hidden_size=32,
        n_heads=4,
        ffn_hidden_size=48,
        vocab_size=16,
        max_seq_len=args.prompt_length + args.max_response,
    )
    model = TinyLM(cfg, seed=args.seed)
    lengths = sample_response_lengths(
        args.requests, args.mean_response, args.max_response, rng
    )
    serving = ServingConfig(
        max_slots=args.slots,
        block_size=args.block_size,
        n_blocks=args.blocks,
        eos_token_id=args.eos,
        greedy=args.eos is None,
        slo_ttft=args.slo_ttft,
        slo_latency=args.slo_latency,
        seed=args.seed,
    )
    server = RolloutServer(model, serving)
    arrival = 0.0
    for i in range(args.requests):
        if args.arrival_rate > 0:
            arrival += (
                float(rng.exponential(1.0 / args.arrival_rate))
                * serving.step_time
            )
        server.submit(
            rng.integers(0, cfg.vocab_size, size=args.prompt_length),
            # with EOS the response length is sampled by the model itself;
            # without, each request greedily runs to its target length
            max_new_tokens=(
                args.max_response if args.eos is not None else int(lengths[i])
            ),
            priority=int(rng.integers(0, args.priority_levels)),
            arrival_time=arrival if args.arrival_rate > 0 else 0.0,
        )
    report = server.drain()
    print(
        f"continuous-batching rollout serving: {args.requests} requests on "
        f"{args.slots} slots, {server.kv.n_blocks} KV blocks of "
        f"{args.block_size} tokens"
    )
    for line in report.summary_lines():
        print(f"  {line}")

    realised = [r.response_length for r in report.completed]
    static_steps = static_batch_steps(realised, args.slots)
    print(
        f"  static wave batching : {static_steps} steps for the same "
        f"responses ({static_steps / max(report.n_steps, 1):.2f}x the "
        f"engine's {report.n_steps})"
    )

    # On a matched workload (all requests at t=0, one priority class, no
    # preemption) the engine must replay the analytic Orca schedule exactly.
    if (
        args.arrival_rate == 0
        and args.priority_levels == 1
        and report.n_preemptions == 0
    ):
        n_steps, util = continuous_schedule_stats(realised, args.slots)
        ok = (
            n_steps == report.n_steps
            and abs(util - report.slot_utilisation) < 1e-9
        )
        print(
            f"  analytic cross-check : engine {report.n_steps} steps / "
            f"{report.slot_utilisation:.3f} util vs model {n_steps} / "
            f"{util:.3f} [{'ok' if ok else 'MISMATCH'}]"
        )
        if not ok:
            print(
                "engine disagrees with repro.perf.continuous_batching",
                file=sys.stderr,
            )
            return 1
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Multi-tenant fleet run: N jobs, one shared cluster, injected kills."""
    import json
    import tempfile

    from repro.faults import FaultPlan
    from repro.fleet import FleetScheduler, JobSpec
    from repro.observability import collect_fleet_metrics
    from repro.serialization import json_safe

    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    spec = ClusterSpec(
        n_machines=args.machines, gpus_per_machine=args.gpus_per_machine
    )
    # Job 0 is elastic (prefers DP=2, accepts DP=1); the rest are fixed-width
    # DP=1 tenants.  Seeds differ so the tenants are distinct models.
    jobs = [
        JobSpec(
            name=f"job{i}",
            priority=0,
            n_iterations=args.iterations,
            checkpoint_every=args.ckpt_every,
            tp=2,
            preferred_dp=2 if i == 0 else 1,
            min_dp=1,
            seed=7 + 2 * i,
        )
        for i in range(args.jobs)
    ]
    demand = " + ".join(str(j.gpus_at(j.preferred_dp)) for j in jobs)

    plan = FaultPlan()
    for machine in args.kill_machines or ():
        if not 0 <= machine < spec.n_machines:
            print(
                f"--kill-machine {machine} out of range for "
                f"{spec.n_machines} machine(s)",
                file=sys.stderr,
            )
            return 2
        plan.kill_machine(machine, at_step=args.at_tick)
    if args.kill_rack is not None:
        n_racks = max(1, spec.n_machines // args.machines_per_rack)
        if not 0 <= args.kill_rack < n_racks:
            print(
                f"--kill-rack {args.kill_rack} out of range for "
                f"{n_racks} rack(s)",
                file=sys.stderr,
            )
            return 2
        plan.kill_rack(
            args.kill_rack,
            at_step=args.at_tick,
            machines_per_rack=args.machines_per_rack,
        )

    print(
        f"fleet: {args.jobs} tenant job(s) (GPU demand {demand}) on "
        f"{spec.n_gpus} shared GPUs, {len(plan)} scheduled kill(s) at "
        f"tick {args.at_tick}"
    )
    with tempfile.TemporaryDirectory() as ckpt_root:
        scheduler = FleetScheduler(
            spec,
            jobs,
            checkpoint_root=ckpt_root,
            fault_plan=plan,
            preemption=not args.no_preemption,
            run_checks=not args.no_checks,
        )
        report = scheduler.run()
        registry = collect_fleet_metrics(scheduler)
    for line in report.summary_lines():
        print(line)

    gate_clean = not report.checks_run or not report.analysis_findings
    goodputs = {j.name: j.goodput for j in report.jobs}
    ok = (
        report.all_completed
        and all(g > 0 for g in goodputs.values())
        and gate_clean
    )
    if args.bench_out:
        import pathlib

        bench = {
            "benchmark": "fleet_chaos_smoke",
            "jobs": args.jobs,
            "cluster_gpus": spec.n_gpus,
            "devices_killed": report.devices_killed,
            "goodput_per_job": goodputs,
            "goodput_mean": sum(goodputs.values()) / len(goodputs),
            "mttr": report.mttr,
            "fairness": report.fairness,
            "preemptions": report.preemptions,
            "resizes": report.resizes,
            "failures": report.failures,
            "makespan": report.makespan,
            "ticks": report.ticks,
            "all_completed": report.all_completed,
            "analysis_findings": dict(report.analysis_findings),
            "metrics_series": len(registry),
            "ok": ok,
        }
        out = pathlib.Path(args.bench_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(json_safe(bench, "fleet"), indent=2) + "\n")
        print(f"  wrote benchmark record to {out}")
    if not ok:
        reasons = []
        if not report.all_completed:
            reasons.append("not every job completed")
        if not all(g > 0 for g in goodputs.values()):
            reasons.append("a job finished with zero goodput")
        if not gate_clean:
            reasons.append("analysis gate found issues")
        print(f"fleet run FAILED: {'; '.join(reasons)}", file=sys.stderr)
        return 1
    return 0


def _example_plan_reports(batch: int):
    """DataflowChecker reports for the configurations the repo ships.

    Two plans are checked: the tiny functional PPO placement every
    faults/trace/metrics subcommand runs (function reward on a 1-GPU pool),
    and a full-scale llama-7b colocated placement with the memory projection
    enabled (App. C) — the same shape §8's evaluation clusters use.
    """
    from repro.analysis import DataflowChecker
    from repro.config import GenParallelConfig as GenPC
    from repro.runtime import ModelAssignment, PlacementPlan

    reports = []
    tiny_par = ParallelConfig(pp=1, tp=2, dp=1)
    tiny_plan = PlacementPlan(
        pools={"main": 2, "r": 1},
        assignments={
            "actor": ModelAssignment("main", tiny_par, GenPC.derive(tiny_par, 1, 1)),
            "critic": ModelAssignment("main", tiny_par),
            "reference": ModelAssignment("main", tiny_par),
            "reward": ModelAssignment("r", ParallelConfig(1, 1, 1)),
        },
    )
    checker = DataflowChecker(global_batch_size=batch)
    report = checker.check_plan(
        AlgoType.PPO, tiny_plan, function_rewards=("reward",)
    )
    report.name = "dataflow[tiny-ppo]"
    reports.append(report)

    full_par = ParallelConfig(pp=1, tp=8, dp=2)
    full_plan = PlacementPlan(
        pools={"all": 16},
        assignments={
            "actor": ModelAssignment("all", full_par, GenPC.derive(full_par, 1, 2)),
            "critic": ModelAssignment("all", full_par),
            "reference": ModelAssignment("all", full_par),
            "reward": ModelAssignment("all", full_par),
        },
    )
    checker = DataflowChecker(
        global_batch_size=1024,
        model_specs={
            role: MODEL_SPECS["llama-7b"]
            for role in ("actor", "critic", "reference", "reward")
        },
        workload=RlhfWorkload(),
        cluster_spec=ClusterSpec(n_machines=2),
    )
    report = checker.check_plan(AlgoType.PPO, full_plan)
    report.name = "dataflow[llama-7b-colocate]"
    reports.append(report)

    # the shipped async-pipeline config (repro pipeline / async_ppo_overlap
    # bench): DF108 soundness of the bounded-staleness relaxation
    from repro.pipeline import PipelineConfig
    from repro.rlhf.trainers import TrainerConfig

    report = DataflowChecker(global_batch_size=batch).check_pipeline(
        PipelineConfig(staleness_window=1), TrainerConfig(), AlgoType.PPO
    )
    report.name = "dataflow[async-pipeline]"
    reports.append(report)
    return reports


def _sharding_reports():
    """ShardingVerifier reports for the configurations the repo ships.

    Proves the resharding geometry for the tiny functional placement and
    the llama-7b colocated placement in both grouping modes, and checks
    the ZeRO-3 / FSDP configs the baselines assume against the memory
    projection.
    """
    from repro.analysis import ShardingVerifier
    from repro.parallel.fsdp import FsdpConfig
    from repro.parallel.topology import (
        GenGroupingMode,
        GenTopology,
        ParallelTopology,
    )
    from repro.parallel.zero import ZeroConfig, ZeroStage

    verifier = ShardingVerifier()
    reports = []
    for name, par, gen_pp, gen_tp in (
        ("tiny-ppo", ParallelConfig(pp=1, tp=2, dp=1), 1, 1),
        ("llama-7b-colocate", ParallelConfig(pp=1, tp=8, dp=2), 1, 2),
    ):
        topo = ParallelTopology(par, name=name)
        report = verifier.verify_topology(topo)
        for mode in (GenGroupingMode.HYBRIDFLOW, GenGroupingMode.VANILLA):
            gen = GenTopology(
                topo, GenParallelConfig.derive(par, gen_pp, gen_tp), mode
            )
            verifier.verify_transition(gen, report=report)
        report.name = f"sharding[{name}]"
        reports.append(report)

    spec = MODEL_SPECS["llama-7b"]
    cluster = ClusterSpec(n_machines=2)
    report = verifier.verify_zero(
        ZeroConfig(ZeroStage.PARAMETERS, dp=cluster.n_gpus),
        spec.n_params(),
        cluster.n_gpus,
        capacity_bytes=cluster.gpu.memory_bytes,
        location="zero[llama-7b]",
    )
    verifier.verify_fsdp(
        FsdpConfig(dp=cluster.n_gpus, strategy="full"),
        spec.n_params(),
        cluster.n_gpus,
        capacity_bytes=cluster.gpu.memory_bytes,
        report=report,
        location="fsdp[llama-7b]",
    )
    report.name = "sharding[zero/fsdp]"
    reports.append(report)
    return reports


def cmd_check(args: argparse.Namespace) -> int:
    """``repro check``: lint + dataflow + trace + sharding + races
    (+ models, + shapes)."""
    import json

    from repro.analysis import (
        AnalysisReport,
        RaceDetector,
        RepoLint,
        TraceAuditor,
    )
    from repro.serialization import json_safe

    as_json = args.json or args.format == "json"
    out = sys.stderr if as_json else sys.stdout
    skip = set(args.skip or ())
    combined = AnalysisReport("repro check")
    if "lint" not in skip:
        lint = RepoLint().lint_paths(args.paths)
        combined.merge(lint)
    if "dataflow" not in skip:
        for report in _example_plan_reports(args.batch):
            combined.merge(report)
    if "sharding" not in skip:
        for report in _sharding_reports():
            combined.merge(report)
    trace_doc = None
    if "trace" not in skip or "races" not in skip:
        import pathlib

        golden = pathlib.Path(args.trace_file)
        if golden.exists():
            trace_doc = json.loads(golden.read_text())
        else:
            print(f"note: no trace file at {golden}, audit skipped", file=out)
    if "trace" not in skip and trace_doc is not None:
        combined.merge(TraceAuditor().audit_chrome_trace(trace_doc))
    if "races" not in skip and trace_doc is not None:
        combined.merge(RaceDetector().detect_chrome_trace(trace_doc))
    if args.shapes:
        from repro.analysis import shipped_graph_reports

        for _name, report in shipped_graph_reports(batch=args.batch):
            combined.merge(report)
    if args.models:
        import dataclasses
        import pathlib

        from repro.analysis import ModelChecker

        checker = ModelChecker(
            max_depth=args.mc_depth, max_states=args.mc_states
        )
        combined.merge(checker.check_shipped())
        if args.mc_report:
            doc = {
                "max_depth": args.mc_depth,
                "max_states": args.mc_states,
                "models": [
                    {
                        "model": result.model,
                        "states": result.states,
                        "transitions": result.transitions,
                        "truncated": result.truncated,
                        "counterexamples": [
                            dataclasses.asdict(ce)
                            for ce in result.counterexamples
                        ],
                    }
                    for result in checker.last_results
                ],
            }
            pathlib.Path(args.mc_report).write_text(
                json.dumps(json_safe(doc, "mc_report"), indent=2) + "\n"
            )
            print(f"model-check report written to {args.mc_report}", file=out)
    for line in combined.summary_lines():
        print(line, file=out)
    if as_json:
        # machine-readable report on stdout; human summary went to stderr
        print(json.dumps(json_safe(combined.to_dict(), "check"), indent=2))
    if not combined.ok(strict=args.strict):
        families = " ".join(
            f"{family}={n}" for family, n in combined.family_counts().items()
        )
        print(
            f"repro check FAILED [{families}]"
            + (" (strict: warnings are failures)" if args.strict else ""),
            file=sys.stderr,
        )
        return 1
    print("repro check passed", file=out)
    return 0


def cmd_pipeline(args: argparse.Namespace) -> int:
    """The ``repro pipeline`` gate: one-step-off overlap with proofs attached.

    Always runs the staleness=0 self-check first — the async driver with an
    empty window must land bit-for-bit on the synchronous trainer's weights —
    then runs the requested window and reports the overlap.  With ``--trace``
    the overlapped schedule is exported and put through the trace auditor and
    the vector-clock race detector; any RC5xx finding fails the command.
    """
    from repro.data import PromptDataset
    from repro.perf.bench import _build_disaggregated_ppo, _system_states_equal
    from repro.pipeline import AsyncPipelineDriver, PipelineConfig
    from repro.runtime.timeline import build_timeline

    def dataset() -> PromptDataset:
        return PromptDataset(
            n_prompts=64, prompt_length=4, vocab_size=16, seed=1
        )

    n, bs = args.iterations, args.batch
    pipeline_config = PipelineConfig(
        staleness_window=args.staleness, stream_scoring=args.stream
    )
    try:
        pipeline_config.validate()
    except ValueError as exc:
        print(f"bad pipeline config: {exc}", file=sys.stderr)
        return 2

    sync_sys = _build_disaggregated_ppo()
    sync_sys.trainer.train(dataset(), n_iterations=n, batch_size=bs)
    sync_makespan = build_timeline(sync_sys.controller).makespan

    # structural guarantee first: an empty window IS the synchronous loop
    exact_sys = _build_disaggregated_ppo()
    AsyncPipelineDriver(
        exact_sys.trainer, PipelineConfig(staleness_window=0)
    ).train(dataset(), n_iterations=n, batch_size=bs)
    if not _system_states_equal(sync_sys, exact_sys):
        print(
            "staleness=0 self-check FAILED: async driver diverged from the "
            "synchronous trainer",
            file=sys.stderr,
        )
        return 1
    print(
        f"staleness=0 self-check: bit-exact with synchronous run_step "
        f"over {n} iterations"
    )

    async_sys = _build_disaggregated_ppo()
    driver = AsyncPipelineDriver(async_sys.trainer, pipeline_config)
    driver.train(dataset(), n_iterations=n, batch_size=bs)
    timeline = build_timeline(async_sys.controller)
    report = driver.report()
    speedup = sync_makespan / max(timeline.makespan, 1e-9)
    print(
        f"async pipeline: staleness_window={report['staleness_window']} "
        f"max_staleness_seen={report['max_staleness_seen']} "
        f"buffer_peak={report['buffer_peak_occupancy']}/"
        f"{report['buffer_capacity']}"
    )
    print(
        f"  weight publications: {report['publications']} "
        f"({report['published_bytes']} bytes via the train->gen plan)"
    )
    print(
        f"  modeled makespan: sync {sync_makespan:.1f}s -> overlapped "
        f"{timeline.makespan:.1f}s (speedup {speedup:.3f}x)"
    )
    for pool in timeline.pools():
        print(
            f"  pool {pool:8s} idle "
            f"{timeline.idle_fraction(pool) * 100:5.1f}%"
        )

    if args.trace:
        from repro.analysis import RaceDetector, TraceAuditor
        from repro.observability import write_chrome_trace

        out = write_chrome_trace(
            args.trace,
            timeline=timeline,
            spans=async_sys.controller.tracer.spans,
        )
        print(f"  wrote Chrome trace to {out}")
        audit = TraceAuditor().audit_system(async_sys)
        RaceDetector().detect_system(async_sys, report=audit)
        for line in audit.summary_lines():
            print(f"  {line}")
        races = [f for f in audit.findings if f.rule.startswith("RC")]
        if races:
            print(
                f"RACE DETECTED on overlapped schedule: {len(races)} "
                "RC5xx finding(s)",
                file=sys.stderr,
            )
            return 1
        print("  race detector: overlapped schedule is clean")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Perf trajectory gate: run pinned workloads, compare vs the baseline."""
    import json
    import pathlib

    from repro.perf.bench import (
        WORKLOADS,
        compare_fleet_records,
        compare_records,
        run_bench,
        summary_lines,
    )
    from repro.serialization import json_safe

    baseline_path = pathlib.Path(args.baseline)

    if args.current is not None:
        # compare-only mode: gate a record produced elsewhere (e.g. the CI
        # fleet run) against its committed baseline — nothing is executed
        current = json.loads(pathlib.Path(args.current).read_text())
        if not baseline_path.exists():
            print(f"no baseline at {baseline_path}", file=sys.stderr)
            return 2
        baseline = json.loads(baseline_path.read_text())
        compare = compare_fleet_records if args.fleet else compare_records
        problems = compare(current, baseline)
        if problems:
            print(
                f"bench comparison vs {baseline_path} FAILED:", file=sys.stderr
            )
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(f"bench comparison vs {baseline_path} passed")
        return 0

    names = args.workload or None
    if names:
        unknown = [n for n in names if n not in WORKLOADS]
        if unknown:
            print(
                f"unknown workload(s) {unknown}; have {sorted(WORKLOADS)}",
                file=sys.stderr,
            )
            return 2
    record = run_bench(names)
    for line in summary_lines(record):
        print(line)

    def write(path: pathlib.Path) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(json_safe(record, "bench"), indent=2) + "\n"
        )
        print(f"wrote bench record to {path}")

    if args.out:
        write(pathlib.Path(args.out))
    if args.update:
        write(baseline_path)
        return 0
    if args.check:
        if not baseline_path.exists():
            print(
                f"no baseline at {baseline_path} — create one with "
                "'repro bench --update'",
                file=sys.stderr,
            )
            return 2
        baseline = json.loads(baseline_path.read_text())
        problems = compare_records(record, baseline)
        if problems:
            print(
                f"bench regression vs {baseline_path}:", file=sys.stderr
            )
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(f"bench check vs {baseline_path} passed")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="HybridFlow reproduction: analytical tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("throughput", help="compare systems on one scenario")
    _common_args(p)
    p.set_defaults(fn=cmd_throughput)

    p = sub.add_parser("map", help="run the auto device-mapping algorithm")
    _common_args(p)
    p.set_defaults(fn=cmd_map)

    p = sub.add_parser("transition", help="Table 2 overheads + transition time")
    _common_args(p)
    p.add_argument("--pp", type=int, default=1)
    p.add_argument("--tp", type=int, default=8)
    p.add_argument("--dp", type=int, default=2)
    p.add_argument("--gen-tp", type=int, default=2)
    p.add_argument("--gen-pp", type=int, default=1)
    p.set_defaults(fn=cmd_transition)

    p = sub.add_parser("sweep-gen", help="Figure 15 generation-TP sweep")
    _common_args(p)
    p.add_argument("--pp", type=int, default=1)
    p.add_argument("--tp", type=int, default=8)
    p.add_argument("--dp", type=int, default=2)
    p.add_argument("--reserved-gb", type=float, default=17.0)
    p.set_defaults(fn=cmd_sweep_gen)

    p = sub.add_parser(
        "map-hetero",
        help="device mapping over heterogeneous zones (the §6 extension)",
    )
    _common_args(p)
    p.add_argument(
        "--zone",
        action="append",
        dest="zones",
        metavar="NAME:GPU:MACHINES",
        help=(
            "a homogeneous zone, e.g. 'fast:H100-80GB:1'; repeatable "
            f"(GPUs: {', '.join(sorted(GPU_SPECS))})"
        ),
    )
    p.set_defaults(fn=cmd_map_hetero)

    p = sub.add_parser(
        "faults",
        help="fault-injected functional run with automatic recovery (§9)",
    )
    p.add_argument(
        "--machines", type=int, default=2, help="simulated machines"
    )
    p.add_argument(
        "--gpus-per-machine",
        type=int,
        default=4,
        help="GPUs per simulated machine (spare capacity hosts re-placement)",
    )
    p.add_argument("--iterations", type=int, default=6, help="PPO iterations")
    p.add_argument(
        "--ckpt-every",
        type=int,
        default=1,
        help="checkpoint interval in iterations",
    )
    p.add_argument(
        "--kill-machine",
        type=int,
        default=None,
        metavar="M",
        help="kill machine M (all its GPUs) at --at-step",
    )
    p.add_argument(
        "--kill-device",
        type=int,
        default=None,
        metavar="RANK",
        help="kill one GPU at --at-step",
    )
    p.add_argument(
        "--transients",
        type=int,
        default=0,
        metavar="N",
        help="inject N consecutive transient RPC failures at --at-step",
    )
    p.add_argument(
        "--at-step",
        type=int,
        default=30,
        help="trace sequence number at which scheduled faults arm",
    )
    p.add_argument(
        "--seed", type=int, default=0, help="retry-backoff jitter seed"
    )
    p.add_argument(
        "--mtbf",
        type=float,
        default=3600.0,
        help="assumed mean time between failures for the analytic model (s)",
    )
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser(
        "trace",
        help="export a Chrome trace_event JSON of the tiny functional run",
    )
    _observability_args(p)
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "metrics",
        help="dump the tiny functional run's metrics as Prometheus text",
    )
    _observability_args(p)
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser(
        "serve",
        help="functional continuous-batching rollout serving demo",
    )
    p.add_argument("--requests", type=int, default=16, help="request count")
    p.add_argument("--prompt-length", type=int, default=4, help="prompt tokens")
    p.add_argument(
        "--mean-response", type=int, default=8, help="mean response length"
    )
    p.add_argument(
        "--max-response", type=int, default=24, help="response length cap"
    )
    p.add_argument("--slots", type=int, default=4, help="decode slots")
    p.add_argument(
        "--block-size", type=int, default=8, help="tokens per KV block"
    )
    p.add_argument(
        "--blocks",
        type=int,
        default=None,
        help=(
            "total KV blocks (default: enough for --slots full-length "
            "sequences; small values force preempt-and-recompute)"
        ),
    )
    p.add_argument(
        "--eos",
        type=int,
        default=None,
        metavar="TOKEN",
        help=(
            "sample with this EOS token id (default: greedy decode to each "
            "request's target length, enabling the analytic cross-check)"
        ),
    )
    p.add_argument(
        "--arrival-rate",
        type=float,
        default=0.0,
        help="mean Poisson arrivals per decode step (0 = all at once)",
    )
    p.add_argument(
        "--priority-levels",
        type=int,
        default=1,
        help="draw request priorities uniformly from [0, N)",
    )
    p.add_argument(
        "--slo-ttft", type=float, default=None, help="TTFT SLO (sim seconds)"
    )
    p.add_argument(
        "--slo-latency",
        type=float,
        default=None,
        help="end-to-end latency SLO (sim seconds)",
    )
    p.add_argument("--seed", type=int, default=0, help="workload + model seed")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "fleet",
        help=(
            "multi-tenant fleet run: gang-schedule N tiny RLHF jobs onto "
            "one shared cluster under injected machine/rack kills"
        ),
    )
    p.add_argument("--jobs", type=int, default=3, help="tenant job count")
    p.add_argument(
        "--machines", type=int, default=3, help="simulated machines"
    )
    p.add_argument(
        "--gpus-per-machine",
        type=int,
        default=4,
        help="GPUs per simulated machine",
    )
    p.add_argument(
        "--iterations", type=int, default=4, help="PPO iterations per job"
    )
    p.add_argument(
        "--ckpt-every",
        type=int,
        default=1,
        help="checkpoint interval in iterations",
    )
    p.add_argument(
        "--kill-machine",
        action="append",
        dest="kill_machines",
        type=int,
        metavar="M",
        help=(
            "kill machine M at --at-tick; repeat for a correlated "
            "multi-machine failure"
        ),
    )
    p.add_argument(
        "--kill-rack",
        type=int,
        default=None,
        metavar="R",
        help="kill every machine in rack R at --at-tick",
    )
    p.add_argument(
        "--machines-per-rack",
        type=int,
        default=2,
        help="rack width for --kill-rack",
    )
    p.add_argument(
        "--at-tick",
        type=int,
        default=2,
        help="scheduler tick at which the kills land",
    )
    p.add_argument(
        "--no-preemption",
        action="store_true",
        help="disable checkpoint-and-evict preemption",
    )
    p.add_argument(
        "--no-checks",
        action="store_true",
        help="skip the DF/TA/SH/RC analysis gate over completed jobs",
    )
    p.add_argument(
        "--bench-out",
        default=None,
        metavar="FILE",
        help="write a JSON benchmark record (goodput, MTTR, fairness)",
    )
    p.set_defaults(fn=cmd_fleet)

    p = sub.add_parser(
        "check",
        help=(
            "repro check gate: RepoLint over the tree, DataflowChecker over "
            "the shipped example plans, ShardingVerifier over the shipped "
            "topologies, TraceAuditor + RaceDetector over the golden trace, "
            "(with --models) the MC6xx protocol model checker, and (with "
            "--shapes) the SF7xx symbolic shape/dtype flow pass"
        ),
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures (CI mode)",
    )
    p.add_argument(
        "--skip",
        action="append",
        choices=("lint", "dataflow", "sharding", "trace", "races"),
        metavar="PASS",
        help="skip one of the passes; repeatable",
    )
    p.add_argument(
        "--batch",
        type=int,
        default=8,
        help="global batch size assumed for the tiny example plan",
    )
    p.add_argument(
        "--trace-file",
        default="tests/golden/chrome_trace.json",
        help="Chrome trace JSON to audit",
    )
    p.add_argument(
        "--models",
        action="store_true",
        help=(
            "also run the MC6xx bounded model checker over the shipped "
            "protocol models (async pipeline, drain hand-off, fleet gangs)"
        ),
    )
    p.add_argument(
        "--shapes",
        action="store_true",
        help=(
            "also run the SF7xx symbolic shape/dtype flow pass over the "
            "shipped algorithm graphs (PPO, GRPO, serving-backed PPO, "
            "async pipeline, train→gen transition)"
        ),
    )
    p.add_argument(
        "--mc-depth",
        type=int,
        default=400,
        help="model checker: maximum schedule length explored",
    )
    p.add_argument(
        "--mc-states",
        type=int,
        default=60_000,
        help="model checker: distinct-state budget per model",
    )
    p.add_argument(
        "--mc-report",
        metavar="PATH",
        help=(
            "write the model-check coverage/counterexample report "
            "(JSON) to PATH"
        ),
    )
    p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help=(
            "report format: json puts the machine-readable report on stdout "
            "and the human summary on stderr"
        ),
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="alias for --format json",
    )
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser(
        "bench",
        help=(
            "perf trajectory gate: run the pinned workloads (sequential "
            "generate, serving drain, PPO iteration, train->gen transition) "
            "and compare against the committed BENCH_perf.json baseline"
        ),
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) on regression beyond tolerance vs the baseline",
    )
    p.add_argument(
        "--update",
        action="store_true",
        help="re-baseline: overwrite the baseline file with this run",
    )
    p.add_argument(
        "--baseline",
        default="BENCH_perf.json",
        help="committed baseline record (default: BENCH_perf.json)",
    )
    p.add_argument(
        "--out",
        default=None,
        help="also write this run's record to a file",
    )
    p.add_argument(
        "--workload",
        action="append",
        metavar="NAME",
        help="run only the named workload; repeatable (default: all)",
    )
    p.add_argument(
        "--current",
        default=None,
        help=(
            "compare-only: gate an existing record file against the "
            "baseline without running workloads"
        ),
    )
    p.add_argument(
        "--fleet",
        action="store_true",
        help=(
            "with --current: records are 'repro fleet --bench-out' output, "
            "compared with the fleet policy (structure + outcome flags)"
        ),
    )
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "pipeline",
        help=(
            "async one-step-off RLHF pipeline: staleness=0 bit-exactness "
            "self-check, then the overlapped run with optional trace + "
            "race-detector gate"
        ),
    )
    p.add_argument(
        "--staleness",
        type=int,
        default=1,
        help="staleness window W (0 = synchronous; default 1)",
    )
    p.add_argument(
        "--iterations", type=int, default=3, help="PPO iterations to run"
    )
    p.add_argument(
        "--batch", type=int, default=4, help="prompts per iteration"
    )
    p.add_argument(
        "--stream",
        action="store_true",
        help="stream frozen-model scoring at rollout time (numerics-neutral)",
    )
    p.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "write a Chrome trace of the overlapped run and gate it through "
            "the trace auditor + vector-clock race detector"
        ),
    )
    p.set_defaults(fn=cmd_pipeline)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
