"""Request lifecycle state for the rollout serving engine.

A request moves ``QUEUED -> RUNNING -> FINISHED``, possibly detouring
through ``PREEMPTED`` (blocks reclaimed, KV cache dropped, re-queued for
recompute) any number of times.  Sampled tokens survive preemption — the
recompute prefill replays ``prompt + generated`` so the sequence resumes
exactly where it stopped, and because the per-request rng draws once per
emitted token, even *sampled* decoding is bit-identical with and without
preemption.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional

import numpy as np

from repro.models.tinylm import KVCache


class RequestState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    PREEMPTED = "preempted"
    FINISHED = "finished"


@dataclasses.dataclass
class Request:
    """One in-flight generation request and its accounting."""

    request_id: int
    prompt: np.ndarray
    max_new_tokens: int
    priority: int = 0
    arrival_time: float = 0.0
    state: RequestState = RequestState.QUEUED
    generated: List[int] = dataclasses.field(default_factory=list)
    log_probs: List[float] = dataclasses.field(default_factory=list)
    #: Per-request sampling stream, independent of scheduling order.
    rng: Optional[np.random.Generator] = dataclasses.field(
        default=None, repr=False
    )
    #: Dense KV payload while resident; ``None`` when queued/preempted.
    cache: Optional[KVCache] = dataclasses.field(default=None, repr=False)
    #: Token positions currently cached (<= seq_len; the newest sampled
    #: token is only cached by the *next* forward).
    kv_len: int = 0
    #: Scheduler steps spent eligible-but-waiting (drives priority aging).
    wait_steps: int = 0
    n_preemptions: int = 0
    #: Tokens whose KV had to be recomputed after preemption.
    recomputed_tokens: int = 0
    first_token_time: Optional[float] = None
    finish_time: Optional[float] = None
    finish_reason: Optional[str] = None  # "eos" | "length"

    @property
    def prompt_length(self) -> int:
        return int(self.prompt.shape[0])

    @property
    def seq_len(self) -> int:
        return self.prompt_length + len(self.generated)

    def tokens(self) -> np.ndarray:
        """Full ``prompt + generated`` token ids, ``(seq_len,)``."""
        if not self.generated:
            return self.prompt
        return np.concatenate(
            [self.prompt, np.asarray(self.generated, dtype=self.prompt.dtype)]
        )

    def effective_priority(self, aging: float) -> float:
        """Submitted priority plus aging credit — what the scheduler ranks.

        With ``aging > 0`` every waiting request's rank rises without bound,
        so any fixed-priority stream eventually yields: starvation-freedom.
        """
        return self.priority + aging * self.wait_steps


@dataclasses.dataclass(frozen=True)
class CompletedRequest:
    """Immutable per-request record the server reports after completion."""

    request_id: int
    prompt_length: int
    response: np.ndarray
    log_probs: np.ndarray
    finish_reason: str
    priority: int
    arrival_time: float
    first_token_time: float
    finish_time: float
    n_preemptions: int
    recomputed_tokens: int

    @property
    def response_length(self) -> int:
        return int(self.response.shape[0])

    @property
    def ttft(self) -> float:
        """Time to first token (queueing + prefill + first decode step)."""
        return self.first_token_time - self.arrival_time

    @property
    def latency(self) -> float:
        return self.finish_time - self.arrival_time

    @property
    def tpot(self) -> float:
        """Mean time per output token after the first."""
        if self.response_length <= 1:
            return 0.0
        return (self.finish_time - self.first_token_time) / (
            self.response_length - 1
        )

    @classmethod
    def from_request(cls, req: Request) -> "CompletedRequest":
        if req.finish_reason is None or req.finish_time is None:
            raise ValueError(f"request {req.request_id} has not finished")
        return cls(
            request_id=req.request_id,
            prompt_length=req.prompt_length,
            response=np.asarray(req.generated, dtype=np.int64),
            log_probs=np.asarray(req.log_probs, dtype=np.float64),
            finish_reason=req.finish_reason,
            priority=req.priority,
            arrival_time=req.arrival_time,
            first_token_time=float(req.first_token_time),
            finish_time=float(req.finish_time),
            n_preemptions=req.n_preemptions,
            recomputed_tokens=req.recomputed_tokens,
        )
