"""``RolloutServer``: a continuous-batching generation front end over TinyLM.

The serving engine the generation stage of §2.3 assumes, made functional:
requests arrive (possibly bursty, possibly prioritised), the scheduler
refills decode slots every step, the paged block manager charges simulated
device memory, and each occupied slot emits exactly one token per step —
the same step accounting as the analytical model in
:mod:`repro.perf.continuous_batching`, so the two can be cross-checked on
matched workloads.

Per-request decoding is batch-1 prefill + incremental KV decode.  Because
numpy's row-independent kernels make a sequence's forward identical whether
it shares a batch or not, greedy serving output is bit-exact with
:func:`repro.models.sampler.generate` row by row — the property the actor's
serving-backed path relies on (and tests assert).

Latency accounting: the simulated clock advances ``step_time`` per decode
step; TTFT/TPOT/latency and SLO attainment are computed per request from
arrival/first-token/finish stamps.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.device import SimDevice
from repro.models.autograd import no_grad
from repro.models.sampler import sample_tokens, sample_tokens_batch
from repro.models.tinylm import KVCache, TinyLM
from repro.serving.paged_kv import PagedKVCache
from repro.serving.request import CompletedRequest, Request, RequestState
from repro.serving.scheduler import ContinuousBatchScheduler, SchedulerConfig


@dataclasses.dataclass(frozen=True)
class ServingConfig:
    """Engine-level serving parameters."""

    max_slots: int = 8
    block_size: int = 16
    #: Total KV blocks; ``None`` derives from device free memory (capped at
    #: what ``max_slots`` full-length sequences could ever use).
    n_blocks: Optional[int] = None
    eos_token_id: Optional[int] = None
    pad_token_id: Optional[int] = None
    temperature: float = 1.0
    greedy: bool = False
    #: Simulated wall-clock seconds per decode step.
    step_time: float = 0.01
    #: SLO thresholds (simulated seconds); ``None`` disables that term.
    slo_ttft: Optional[float] = None
    slo_latency: Optional[float] = None
    aging: float = 0.05
    #: Seed material for per-request rngs (int or tuple; request id appended).
    seed: Union[int, Tuple[int, ...]] = 0
    #: Fraction of device free memory the KV pool may claim when deriving.
    memory_fraction: float = 0.9
    #: Run one forward per equal-kv-length cohort instead of one per slot.
    #: Bit-exact either way (numpy's kernels are row-independent); False
    #: forces the per-slot baseline the bench harness measures against.
    batched_decode: bool = True


@dataclasses.dataclass
class ServingReport:
    """Aggregate outcome of a serving run (``drain`` or ``report``)."""

    completed: List[CompletedRequest]
    n_steps: int
    total_tokens: int
    slot_utilisation: float
    n_preemptions: int
    recomputed_tokens: int
    kv_blocks_total: int
    peak_kv_blocks: int
    peak_kv_bytes: int
    slo_ttft: Optional[float] = None
    slo_latency: Optional[float] = None

    # -- latency aggregates ----------------------------------------------------------
    #
    # Aggregates over an *empty* sample are ``None``, never 0.0: an empty
    # drain reporting p95 TTFT of 0 would be indistinguishable from a
    # perfect run.  ``summary_lines`` renders missing aggregates as "n/a".

    def _percentile(self, values: List[float], q: float) -> Optional[float]:
        return float(np.percentile(values, q)) if values else None

    @property
    def ttfts(self) -> List[float]:
        return [r.ttft for r in self.completed]

    @property
    def latencies(self) -> List[float]:
        return [r.latency for r in self.completed]

    @property
    def tpots(self) -> List[float]:
        return [r.tpot for r in self.completed if r.response_length > 1]

    def mean_ttft(self) -> Optional[float]:
        return float(np.mean(self.ttfts)) if self.completed else None

    def p95_ttft(self) -> Optional[float]:
        return self._percentile(self.ttfts, 95)

    def mean_tpot(self) -> Optional[float]:
        return float(np.mean(self.tpots)) if self.tpots else None

    def mean_latency(self) -> Optional[float]:
        return float(np.mean(self.latencies)) if self.completed else None

    def p95_latency(self) -> Optional[float]:
        return self._percentile(self.latencies, 95)

    def slo_attainment(self) -> Optional[float]:
        """Fraction of requests inside every configured SLO (None = no SLOs)."""
        if not self.completed or (
            self.slo_ttft is None and self.slo_latency is None
        ):
            return None
        ok = 0
        for r in self.completed:
            if self.slo_ttft is not None and r.ttft > self.slo_ttft:
                continue
            if self.slo_latency is not None and r.latency > self.slo_latency:
                continue
            ok += 1
        return ok / len(self.completed)

    def finish_reasons(self) -> Dict[str, int]:
        reasons: Dict[str, int] = {}
        for r in self.completed:
            reasons[r.finish_reason] = reasons.get(r.finish_reason, 0) + 1
        return reasons

    @staticmethod
    def _fmt_stat(value: Optional[float]) -> str:
        return "n/a" if value is None else f"{value:.4f}"

    def summary_lines(self) -> List[str]:
        reasons = ", ".join(
            f"{k}={v}" for k, v in sorted(self.finish_reasons().items())
        )
        lines = [
            f"requests completed   : {len(self.completed)} ({reasons})",
            f"decode steps         : {self.n_steps}",
            f"tokens generated     : {self.total_tokens}",
            f"slot utilisation     : {self.slot_utilisation:.3f}",
            f"preemptions          : {self.n_preemptions} "
            f"({self.recomputed_tokens} tokens recomputed)",
            f"peak KV blocks       : {self.peak_kv_blocks}/{self.kv_blocks_total} "
            f"({self.peak_kv_bytes} bytes)",
            f"TTFT mean / p95      : {self._fmt_stat(self.mean_ttft())} / "
            f"{self._fmt_stat(self.p95_ttft())} s",
            f"TPOT mean            : {self._fmt_stat(self.mean_tpot())} s",
            f"latency mean / p95   : {self._fmt_stat(self.mean_latency())} / "
            f"{self._fmt_stat(self.p95_latency())} s",
        ]
        attainment = self.slo_attainment()
        if attainment is not None:
            slos = []
            if self.slo_ttft is not None:
                slos.append(f"ttft<={self.slo_ttft:g}s")
            if self.slo_latency is not None:
                slos.append(f"latency<={self.slo_latency:g}s")
            lines.append(
                f"SLO attainment       : {attainment:.1%} ({', '.join(slos)})"
            )
        return lines

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_requests": len(self.completed),
            "n_steps": self.n_steps,
            "total_tokens": self.total_tokens,
            "slot_utilisation": self.slot_utilisation,
            "n_preemptions": self.n_preemptions,
            "recomputed_tokens": self.recomputed_tokens,
            "peak_kv_blocks": self.peak_kv_blocks,
            "kv_blocks_total": self.kv_blocks_total,
            "mean_ttft": self.mean_ttft(),
            "p95_ttft": self.p95_ttft(),
            "mean_tpot": self.mean_tpot(),
            "mean_latency": self.mean_latency(),
            "p95_latency": self.p95_latency(),
            "slo_attainment": self.slo_attainment(),
            "finish_reasons": self.finish_reasons(),
        }


def static_batch_steps(lengths: Sequence[int], capacity: int) -> int:
    """Decode steps static wave batching needs for ``lengths`` responses.

    Each wave of ``capacity`` requests runs until its longest member
    finishes — the baseline the continuous engine is measured against
    (identical step accounting to ``repro.perf.continuous_batching.
    serve_static``, without the cost model).
    """
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    arr = np.asarray(lengths, dtype=np.int64)
    return sum(
        int(arr[start : start + capacity].max())
        for start in range(0, len(arr), capacity)
    )


class RolloutServer:
    """Submit/step/drain serving interface over one TinyLM replica."""

    def __init__(
        self,
        model: TinyLM,
        config: Optional[ServingConfig] = None,
        device: Optional[SimDevice] = None,
        tracer=None,
        metrics=None,
    ) -> None:
        if model.config.output_head != "lm":
            raise ValueError("serving requires an LM head")
        self.model = model
        self.config = config or ServingConfig()
        self.device = device
        self.tracer = tracer
        self.metrics = metrics
        if self.config.eos_token_id is not None and not (
            0 <= self.config.eos_token_id < model.config.vocab_size
        ):
            raise ValueError(
                f"eos_token_id {self.config.eos_token_id} outside vocab "
                f"[0, {model.config.vocab_size})"
            )
        self.kv = PagedKVCache(
            model.config,
            block_size=self.config.block_size,
            n_blocks=self._resolve_n_blocks(model, device),
            device=device,
        )
        self.scheduler = ContinuousBatchScheduler(
            SchedulerConfig(
                max_slots=self.config.max_slots, aging=self.config.aging
            ),
            self.kv,
        )
        seed = self.config.seed
        self._seed: Tuple[int, ...] = (
            (seed,) if isinstance(seed, int) else tuple(seed)
        )
        self.now = 0.0
        self._next_id = 0
        self._completed: List[CompletedRequest] = []
        self._steps = 0
        self._occupied_slot_steps = 0
        self._tokens = 0

    def _resolve_n_blocks(
        self, model: TinyLM, device: Optional[SimDevice]
    ) -> int:
        cfg = self.config
        if cfg.n_blocks is not None:
            return cfg.n_blocks
        # never need more than max_slots full-length sequences
        per_seq = -(-model.config.max_seq_len // cfg.block_size)
        cap = cfg.max_slots * per_seq
        if device is None:
            return cap
        from repro.serving.paged_kv import kv_bytes_per_token

        bytes_per_block = kv_bytes_per_token(model.config) * cfg.block_size
        affordable = int(
            device.memory.free * cfg.memory_fraction
        ) // bytes_per_block
        return max(1, min(cap, affordable))

    # -- submission ------------------------------------------------------------------

    def submit(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        priority: int = 0,
        arrival_time: Optional[float] = None,
    ) -> int:
        """Enqueue one generation request; returns its request id."""
        prompt = np.asarray(prompt, dtype=np.int64)
        if prompt.ndim != 1 or prompt.shape[0] < 1:
            raise ValueError(f"prompt must be non-empty 1-D, got {prompt.shape}")
        if max_new_tokens < 1:
            raise ValueError(
                f"max_new_tokens must be >= 1, got {max_new_tokens}"
            )
        max_len = prompt.shape[0] + max_new_tokens
        if max_len > self.model.config.max_seq_len:
            raise ValueError(
                f"prompt + max_new_tokens = {max_len} exceeds max_seq_len "
                f"{self.model.config.max_seq_len}"
            )
        if self.kv.blocks_needed(max_len) > self.kv.n_blocks:
            raise ValueError(
                f"request needs {self.kv.blocks_needed(max_len)} KV blocks "
                f"at full length but the pool only has {self.kv.n_blocks}; "
                "preemption could never make it fit"
            )
        request_id = self._next_id
        self._next_id += 1
        req = Request(
            request_id=request_id,
            prompt=prompt,
            max_new_tokens=max_new_tokens,
            priority=priority,
            arrival_time=self.now if arrival_time is None else arrival_time,
            rng=np.random.default_rng(self._seed + (request_id,)),
        )
        self.scheduler.add(req)
        if self.metrics is not None:
            self.metrics.counter(
                "repro_serving_requests_submitted_total",
                "Requests submitted to the rollout server",
            ).inc()
        return request_id

    # -- stepping --------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests not yet finished (queued + running + preempted)."""
        return len(self.scheduler.waiting) + len(self.scheduler.running)

    def step(self) -> List[CompletedRequest]:
        """One engine iteration: refill slots, decode one token per slot.

        Every occupied slot emits exactly one token (admitted requests
        prefill and sample their first token in the same step), matching the
        step accounting of ``repro.perf.continuous_batching
        .serve_continuous``.  The pass runs in three phases: reserve blocks
        for every decoding runner (rank order, so preemption victims are
        strictly later-ranked than the request that evicts them), prefill
        admissions one by one (their context lengths differ), then decode
        the surviving runners one forward per equal-kv-length cohort.
        Per-request rngs make the emitted tokens independent of cohorting.
        Returns the requests that finished this step.
        """
        step_end = self.now + self.config.step_time
        span = None
        if self.tracer is not None:
            span = self.tracer.begin(
                f"serving.step[{self._steps}]", category="serving"
            )
        self.scheduler.schedule(self.now)
        # rank order makes decode deterministic and preemption victims
        # strictly later in the pass than the request that evicts them
        active = sorted(self.scheduler.running, key=self.scheduler.rank_key)
        finished_now: List[CompletedRequest] = []
        produced = 0
        with no_grad():
            prefill: List[Request] = []
            decode: List[Request] = []
            for req in active:
                if req.state is not RequestState.RUNNING:
                    continue  # preempted earlier in this same pass
                if req.cache is None:
                    prefill.append(req)
                else:
                    self.scheduler.ensure_decode_blocks(req)
                    decode.append(req)
            # a reservation above may have evicted a later-ranked runner
            prefill = [r for r in prefill if r.state is RequestState.RUNNING]
            emitted: Dict[int, Tuple[int, float]] = {}
            for req in prefill:
                emitted[req.request_id] = self._forward_one(req)
            for cohort in self._decode_cohorts(decode):
                for req, token, logp in self._decode_batch(cohort):
                    emitted[req.request_id] = (token, logp)
            for req in prefill + decode:
                token, logp = emitted[req.request_id]
                req.generated.append(token)
                req.log_probs.append(logp)
                produced += 1
                if req.first_token_time is None:
                    req.first_token_time = step_end
                if (
                    self.config.eos_token_id is not None
                    and token == self.config.eos_token_id
                ):
                    finished_now.append(self._finish(req, step_end, "eos"))
                elif len(req.generated) >= req.max_new_tokens:
                    finished_now.append(self._finish(req, step_end, "length"))
        self._steps += 1
        self._occupied_slot_steps += produced
        self._tokens += produced
        self.now = step_end
        if self.metrics is not None and produced:
            self.metrics.counter(
                "repro_serving_tokens_total",
                "Tokens generated by the rollout server",
            ).inc(produced)
        if span is not None:
            self.tracer.end(
                span, active=produced, finished=len(finished_now)
            )
        return finished_now

    def _forward_one(self, req: Request) -> Tuple[int, float]:
        """Advance one request by one token (prefill or incremental decode)."""
        if req.cache is None:
            # fresh admission or post-preemption recompute: one prefill over
            # the full context rebuilds the dense KV payload
            req.cache = KVCache(self.model.config.n_layers)
            context = req.tokens()
            logits = self.model.forward(
                context[None, :], cache=req.cache, pos_offset=0
            )
            req.kv_len = int(context.shape[0])
        else:
            last = req.generated[-1]
            logits = self.model.forward(
                np.asarray([[last]], dtype=np.int64),
                cache=req.cache,
                pos_offset=req.kv_len,
            )
            req.kv_len += 1
        step_logits = logits.data[:, -1, :]
        token_arr = sample_tokens(
            step_logits,
            req.rng,
            temperature=self.config.temperature,
            greedy=self.config.greedy,
        )
        token = int(token_arr[0])
        shifted = step_logits - step_logits.max(axis=-1, keepdims=True)
        logp = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        return token, float(logp[0, token])

    def _decode_cohorts(self, decode: List[Request]) -> List[List[Request]]:
        """Partition decoding runners into equal-kv-length forward cohorts.

        Rows of one forward must share a ``pos_offset`` (and concatenate
        without padding), so only requests at the same KV length may share a
        batch.  With ``batched_decode`` off every request is its own cohort
        — the historical per-slot baseline.
        """
        if not self.config.batched_decode:
            return [[req] for req in decode]
        groups: Dict[int, List[Request]] = {}
        for req in decode:
            groups.setdefault(req.kv_len, []).append(req)
        return list(groups.values())

    def _decode_batch(
        self, cohort: List[Request]
    ) -> List[Tuple[Request, int, float]]:
        """One incremental forward for a whole equal-kv-length cohort.

        Per-request dense caches are stacked on the batch axis, the model
        runs once over ``(cohort, 1)`` last tokens, and each request gets
        its row of the grown cache back as a view.  Sampling draws one
        scalar uniform from each request's own rng
        (:func:`sample_tokens_batch`), so tokens are bit-identical to
        decoding each request alone — cohorting is invisible to output.
        """
        if len(cohort) == 1:
            req = cohort[0]
            token, logp = self._forward_one(req)
            return [(req, token, logp)]
        n_layers = self.model.config.n_layers
        kv_len = cohort[0].kv_len
        batched = KVCache(n_layers)
        for layer in range(n_layers):
            batched.keys[layer] = np.concatenate(
                [r.cache.keys[layer] for r in cohort], axis=0
            )
            batched.values[layer] = np.concatenate(
                [r.cache.values[layer] for r in cohort], axis=0
            )
        last = np.asarray(
            [[r.generated[-1]] for r in cohort], dtype=np.int64
        )
        logits = self.model.forward(last, cache=batched, pos_offset=kv_len)
        for i, req in enumerate(cohort):
            # row views share the cohort's base buffer; every row is live,
            # so nothing beyond the rows themselves is kept alive
            for layer in range(n_layers):
                req.cache.keys[layer] = batched.keys[layer][i : i + 1]
                req.cache.values[layer] = batched.values[layer][i : i + 1]
            req.kv_len += 1
        step_logits = logits.data[:, -1, :]
        tokens = sample_tokens_batch(
            step_logits,
            [r.rng for r in cohort],
            temperature=self.config.temperature,
            greedy=self.config.greedy,
        )
        shifted = step_logits - step_logits.max(axis=-1, keepdims=True)
        logp = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        return [
            (req, int(tok), float(logp[i, int(tok)]))
            for i, (req, tok) in enumerate(zip(cohort, tokens))
        ]

    def _finish(
        self, req: Request, at_time: float, reason: str
    ) -> CompletedRequest:
        req.finish_reason = reason
        req.finish_time = at_time
        self.scheduler.finish(req)
        done = CompletedRequest.from_request(req)
        self._completed.append(done)
        if self.metrics is not None:
            self.metrics.counter(
                "repro_serving_requests_total",
                "Requests completed by the rollout server",
                reason=reason,
            ).inc()
            self.metrics.histogram(
                "repro_serving_ttft_seconds",
                "Simulated time to first token",
            ).observe(done.ttft)
            self.metrics.histogram(
                "repro_serving_latency_seconds",
                "Simulated request latency",
            ).observe(done.latency)
        if self.tracer is not None:
            self.tracer.instant(
                f"serving.request[{req.request_id}]",
                category="serving",
                reason=reason,
                response_length=done.response_length,
                preemptions=done.n_preemptions,
            )
        return done

    def drain(
        self,
        max_steps: int = 1_000_000,
        on_finish: Optional[Callable[[CompletedRequest], None]] = None,
    ) -> ServingReport:
        """Step until every submitted request has finished; report.

        ``on_finish`` is invoked once per completed request, in completion
        order, the moment its decode step finishes — the streamed hand-off
        primitive the async RLHF pipeline builds on: downstream scoring
        (reward / reference log-probs) can start on early finishers while
        later requests are still decoding, instead of waiting for the whole
        batch boundary.
        """
        while self.pending:
            finished = self.step()
            if on_finish is not None:
                for done in finished:
                    on_finish(done)
            if self._steps > max_steps:
                raise RuntimeError(
                    f"serving did not drain within {max_steps} steps "
                    f"({self.pending} requests pending)"
                )
        return self.report()

    # -- reporting -------------------------------------------------------------------

    def report(self) -> ServingReport:
        denominator = self._steps * self.config.max_slots or 1
        report = ServingReport(
            completed=sorted(self._completed, key=lambda r: r.request_id),
            n_steps=self._steps,
            total_tokens=self._tokens,
            slot_utilisation=self._occupied_slot_steps / denominator,
            n_preemptions=self.scheduler.n_preemptions,
            recomputed_tokens=sum(
                r.recomputed_tokens for r in self._completed
            ),
            kv_blocks_total=self.kv.n_blocks,
            peak_kv_blocks=self.kv.peak_blocks_in_use,
            peak_kv_bytes=self.kv.peak_bytes_in_use(),
            slo_ttft=self.config.slo_ttft,
            slo_latency=self.config.slo_latency,
        )
        if self.metrics is not None:
            self.metrics.gauge(
                "repro_serving_slot_utilisation",
                "Mean fraction of decode slots occupied",
            ).set(report.slot_utilisation)
            self.metrics.gauge(
                "repro_serving_kv_blocks_peak",
                "Peak KV blocks in use",
            ).set_max(report.peak_kv_blocks)
            self.metrics.counter(
                "repro_serving_preemptions_total",
                "Sequences preempted under block pressure",
            )
            preempt_counter = self.metrics.get(
                "repro_serving_preemptions_total"
            )
            delta = report.n_preemptions - preempt_counter.value
            if delta > 0:
                preempt_counter.inc(delta)
        return report
