"""Paged KV-cache block manager (the vLLM [36] discipline, simulated).

The paper's generation stage "leverages vLLM's continuous batching and paged
KV-cache memory management" (§2.3): instead of reserving a contiguous
``max_seq_len`` KV region per slot, the cache is carved into fixed-size
*blocks* of ``block_size`` token positions, and every sequence holds a block
table that grows one block at a time as it decodes.  Fragmentation drops
from per-sequence worst-case to at most one partial block per sequence, so
many more sequences fit the same device memory.

This manager tracks the *accounting* half of that design exactly: a free
pool of block ids, per-request block tables, reserve/release, and a charge
against a :class:`repro.cluster.SimDevice` memory ledger under a named tag —
so block exhaustion and simulated-device OOM are the same budget viewed at
two granularities.  The token payloads themselves live in each request's
:class:`repro.models.tinylm.KVCache` (dense per-sequence arrays); the block
manager decides *whether they may exist*, which is all the scheduler needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.device import SimDevice
from repro.models.tinylm import TinyLMConfig

#: numpy float64 — the repo-wide model dtype.
DTYPE_BYTES = 8


class BlockExhausted(RuntimeError):
    """Raised when a reservation cannot be satisfied from the free pool."""

    def __init__(self, requested: int, free: int, total: int) -> None:
        self.requested = requested
        self.free = free
        self.total = total
        super().__init__(
            f"KV block pool exhausted: requested {requested} blocks, "
            f"{free} free of {total}"
        )


def kv_bytes_per_token(config: TinyLMConfig, dtype_bytes: int = DTYPE_BYTES) -> int:
    """Bytes of K+V cache one token position costs across all layers."""
    return 2 * config.n_layers * config.n_heads * config.head_dim * dtype_bytes


class PagedKVCache:
    """Fixed-size KV block pool with per-request block tables.

    Args:
        config: Model architecture (fixes the per-token KV footprint).
        block_size: Token positions per block.
        n_blocks: Total blocks in the pool.
        device: Optional simulated device; when given, ``blocks_in_use *
            bytes_per_block`` is charged to its memory ledger under ``tag``
            after every reserve/release, so the pool shows up in the same
            OOM accounting as params/grads/optimizer state.
        tag: Ledger tag for the charge.
    """

    def __init__(
        self,
        config: TinyLMConfig,
        block_size: int = 16,
        n_blocks: int = 64,
        device: Optional[SimDevice] = None,
        tag: str = "serving/kv_blocks",
    ) -> None:
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if n_blocks < 1:
            raise ValueError(f"n_blocks must be >= 1, got {n_blocks}")
        self.config = config
        self.block_size = block_size
        self.n_blocks = n_blocks
        self.bytes_per_block = kv_bytes_per_token(config) * block_size
        self.device = device
        self.tag = tag
        # pop() hands out low block ids first — deterministic tables
        self._free: List[int] = list(range(n_blocks - 1, -1, -1))
        self._tables: Dict[int, List[int]] = {}
        self.peak_blocks_in_use = 0

    # -- queries ---------------------------------------------------------------------

    @property
    def blocks_in_use(self) -> int:
        return self.n_blocks - len(self._free)

    @property
    def blocks_free(self) -> int:
        return len(self._free)

    def bytes_in_use(self) -> int:
        return self.blocks_in_use * self.bytes_per_block

    def peak_bytes_in_use(self) -> int:
        return self.peak_blocks_in_use * self.bytes_per_block

    def blocks_needed(self, n_tokens: int) -> int:
        """Blocks covering ``n_tokens`` cached positions (ceiling division)."""
        if n_tokens < 0:
            raise ValueError(f"n_tokens must be >= 0, got {n_tokens}")
        return -(-n_tokens // self.block_size)

    def block_table(self, request_id: int) -> List[int]:
        """The request's current block ids (copy; empty when unknown)."""
        return list(self._tables.get(request_id, ()))

    def can_reserve(self, request_id: int, n_tokens: int) -> bool:
        """Whether growing the request's table to ``n_tokens`` would succeed."""
        held = len(self._tables.get(request_id, ()))
        return self.blocks_needed(n_tokens) - held <= len(self._free)

    # -- mutation --------------------------------------------------------------------

    def reserve(self, request_id: int, n_tokens: int) -> None:
        """Grow the request's block table to cover ``n_tokens`` positions.

        Idempotent for already-covered lengths; raises
        :class:`BlockExhausted` (leaving state untouched) when the free pool
        cannot supply the extra blocks.
        """
        table = self._tables.setdefault(request_id, [])
        extra = self.blocks_needed(n_tokens) - len(table)
        if extra <= 0:
            return
        if extra > len(self._free):
            raise BlockExhausted(extra, len(self._free), self.n_blocks)
        for _ in range(extra):
            table.append(self._free.pop())
        self._charge()

    def release(self, request_id: int) -> int:
        """Return all of the request's blocks to the pool; count released."""
        table = self._tables.pop(request_id, [])
        self._free.extend(reversed(table))
        self._charge()
        return len(table)

    def _charge(self) -> None:
        self.peak_blocks_in_use = max(self.peak_blocks_in_use, self.blocks_in_use)
        if self.device is not None:
            self.device.memory.resize(self.tag, self.bytes_in_use())

    def __repr__(self) -> str:
        return (
            f"PagedKVCache({self.blocks_in_use}/{self.n_blocks} blocks in "
            f"use, block_size={self.block_size}, "
            f"{len(self._tables)} tables)"
        )
