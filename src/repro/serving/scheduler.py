"""Iteration-level (continuous-batching) scheduler over paged KV blocks.

Orca [83] moved scheduling from request granularity to *iteration*
granularity: after every decode step, finished sequences leave the batch and
queued requests take their slots immediately, instead of idling until the
wave's longest member completes.  This scheduler implements that discipline
plus the two policies a real rollout server needs on top:

* **Priority with aging** — requests are ranked by ``priority + aging *
  wait_steps`` (ties broken by arrival, then id).  Any positive aging rate
  makes the rank of a waiting request grow without bound, so a low-priority
  request can be overtaken only finitely often: no starvation.
* **Preempt-and-recompute** — when the block pool cannot cover a running
  sequence's next token, the lowest-ranked *other* runner is evicted: its
  blocks return to the pool, its dense KV cache is freed
  (:meth:`repro.models.tinylm.KVCache.free`), and it re-queues keeping its
  sampled tokens.  On re-admission a single prefill over ``prompt +
  generated`` rebuilds the cache — vLLM's recomputation recovery, which
  trades FLOPs for never swapping KV off-device.

Admission is head-of-line: if the highest-ranked eligible request does not
fit the free blocks, nothing behind it is admitted this step.  Skipping
ahead to smaller requests would starve long prompts under memory pressure —
exactly the failure mode the aging term exists to rule out.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.serving.paged_kv import BlockExhausted, PagedKVCache
from repro.serving.request import Request, RequestState


@dataclasses.dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of the continuous-batching policy."""

    #: Decode slots per step (the engine's max batch size).
    max_slots: int = 8
    #: Priority gained per eligible-but-waiting step; > 0 => starvation-free.
    aging: float = 0.05

    def __post_init__(self) -> None:
        if self.max_slots < 1:
            raise ValueError(f"max_slots must be >= 1, got {self.max_slots}")
        if self.aging < 0:
            raise ValueError(f"aging must be >= 0, got {self.aging}")


class ContinuousBatchScheduler:
    """Slot refill, priority ranking, and block-pressure preemption."""

    def __init__(self, config: SchedulerConfig, kv: PagedKVCache) -> None:
        self.config = config
        self.kv = kv
        self.waiting: List[Request] = []
        self.running: List[Request] = []
        self.n_admissions = 0
        self.n_preemptions = 0

    # -- ranking ---------------------------------------------------------------------

    def rank_key(self, req: Request) -> Tuple[float, float, int]:
        """Sort key: best-ranked first (highest effective priority)."""
        return (
            -req.effective_priority(self.config.aging),
            req.arrival_time,
            req.request_id,
        )

    # -- admission -------------------------------------------------------------------

    def add(self, req: Request) -> None:
        req.state = RequestState.QUEUED
        self.waiting.append(req)

    def schedule(self, now: float) -> List[Request]:
        """Refill free slots from the queue; returns newly admitted requests.

        An admitted request gets blocks reserved for its full current
        context (``prompt + generated``) — what the prefill this step will
        cache.  Requests not yet arrived are ignored; the rest accrue one
        waiting step each.
        """
        admitted: List[Request] = []
        while len(self.running) < self.config.max_slots:
            eligible = [r for r in self.waiting if r.arrival_time <= now]
            if not eligible:
                break
            head = min(eligible, key=self.rank_key)
            if not self.kv.can_reserve(head.request_id, head.seq_len):
                break  # head-of-line: wait for blocks rather than starve it
            self.kv.reserve(head.request_id, head.seq_len)
            self.waiting.remove(head)
            head.state = RequestState.RUNNING
            self.running.append(head)
            admitted.append(head)
            self.n_admissions += 1
        for req in self.waiting:
            if req.arrival_time <= now:
                req.wait_steps += 1
        return admitted

    # -- block pressure --------------------------------------------------------------

    def ensure_decode_blocks(self, req: Request) -> None:
        """Reserve KV space for ``req``'s next token, evicting if needed.

        Victims are the worst-ranked *other* runners; ``req`` itself is
        never evicted (the server validates at submit time that any single
        request fits the whole pool, so the loop terminates).
        """
        target = req.kv_len + 1
        while not self.kv.can_reserve(req.request_id, target):
            victim = self._pick_victim(exclude=req)
            if victim is None:
                raise BlockExhausted(
                    self.kv.blocks_needed(target),
                    self.kv.blocks_free,
                    self.kv.n_blocks,
                )
            self.preempt(victim)
        self.kv.reserve(req.request_id, target)

    def _pick_victim(self, exclude: Request) -> Optional[Request]:
        candidates = [r for r in self.running if r is not exclude]
        if not candidates:
            return None
        return max(candidates, key=self.rank_key)

    def preempt(self, victim: Request) -> None:
        """Evict a runner: blocks back to the pool, KV dropped, re-queued."""
        self.kv.release(victim.request_id)
        if victim.cache is not None:
            victim.cache.free()
            victim.cache = None
        victim.recomputed_tokens += victim.kv_len
        victim.kv_len = 0
        victim.state = RequestState.PREEMPTED
        victim.n_preemptions += 1
        self.running.remove(victim)
        self.waiting.append(victim)
        self.n_preemptions += 1

    # -- completion ------------------------------------------------------------------

    def finish(self, req: Request) -> None:
        """Release a finished runner's blocks and cache, free its slot."""
        self.kv.release(req.request_id)
        if req.cache is not None:
            req.cache.free()
            req.cache = None
        req.state = RequestState.FINISHED
        self.running.remove(req)

    # -- invariants (asserted by tests) ----------------------------------------------

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if the block accounting drifted."""
        assert self.kv.blocks_in_use <= self.kv.n_blocks
        assert len(self.running) <= self.config.max_slots
        for req in self.running:
            held = len(self.kv.block_table(req.request_id))
            assert held == self.kv.blocks_needed(req.kv_len), (
                f"request {req.request_id}: holds {held} blocks for "
                f"kv_len {req.kv_len}"
            )
        for req in self.waiting:
            assert not self.kv.block_table(req.request_id), (
                f"queued request {req.request_id} still holds blocks"
            )
