"""Rollout serving: paged KV blocks + continuous batching over TinyLM (§2.3).

The functional counterpart of :mod:`repro.perf.continuous_batching` — an
engine that actually decodes requests with iteration-level scheduling,
paged KV-cache block management charged to simulated device memory, priority
queues with aging, preempt-and-recompute under block pressure, and
per-request TTFT/TPOT/latency/SLO accounting.
"""

from repro.serving.paged_kv import (
    BlockExhausted,
    PagedKVCache,
    kv_bytes_per_token,
)
from repro.serving.request import CompletedRequest, Request, RequestState
from repro.serving.scheduler import ContinuousBatchScheduler, SchedulerConfig
from repro.serving.server import (
    RolloutServer,
    ServingConfig,
    ServingReport,
    static_batch_steps,
)

__all__ = [
    "BlockExhausted",
    "CompletedRequest",
    "ContinuousBatchScheduler",
    "PagedKVCache",
    "Request",
    "RequestState",
    "RolloutServer",
    "SchedulerConfig",
    "ServingConfig",
    "ServingReport",
    "kv_bytes_per_token",
    "static_batch_steps",
]
