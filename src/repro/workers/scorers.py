"""Reference, reward, and cost workers — the forward-only models (Table 4).

Also includes :class:`RewardFunctionWorker`, the paper's §9 extension point:
"the reward model can be replaced by non-neural-network reward modules, such
as a sandbox environment for evaluating generated code or a reward function
... by wrapping them as remote functions".
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.data.batch import DataBatch
from repro.models.tinylm import TinyLM, TinyLMConfig
from repro.single_controller.decorator import register, shape_contract
from repro.single_controller.worker import Worker, WorkerContext
from repro.workers.base import ThreeDParallelWorker


def _sequence_scores(model: TinyLM, batch: DataBatch) -> np.ndarray:
    """Scalar-head score of each sequence at its last *real* token.

    Without a ``response_mask`` this is the final position (the historical
    behaviour); with one (EOS sampling), scoring the padded final column
    would judge the response by its padding, so the score is gathered at
    ``prompt_length + response_length - 1`` per row instead.
    """
    if "response_mask" not in batch:
        return model.sequence_reward(batch["sequences"]).data
    values = model.values(batch["sequences"]).data
    prompt_len = batch.meta["prompt_length"]
    lengths = batch["response_mask"].sum(axis=1).astype(np.int64)
    last = prompt_len + np.maximum(lengths, 1) - 1
    return values[np.arange(values.shape[0]), last]


class ReferenceWorker(ThreeDParallelWorker):
    """The frozen reference policy: one forward pass per batch."""

    trainable = False

    def __init__(
        self,
        ctx: WorkerContext,
        model_config: TinyLMConfig,
        seed: int = 0,
        tag: str = "reference",
    ) -> None:
        if model_config.output_head != "lm":
            raise ValueError("the reference policy needs an LM head")
        super().__init__(ctx, model_config, seed=seed, tag=tag)

    @register(protocol="3d_proto")
    @shape_contract(
        inputs={"sequences": "B,L:int64"},
        outputs={"sequences": "B,L:int64", "ref_log_probs": "B,R"},
    )
    def compute_ref_log_prob(self, batch: DataBatch) -> Optional[DataBatch]:
        """Reference log-probs of the response tokens (Table 4)."""

        def compute(model: TinyLM):
            prompt_len = batch.meta["prompt_length"]
            logp = model.token_log_probs(batch["sequences"]).data
            return batch.select(["sequences"]).union(
                DataBatch(
                    {"ref_log_probs": logp[:, prompt_len - 1 :]},
                    meta=batch.meta,
                )
            )

        return self.replica_forward(compute)


class RewardWorker(ThreeDParallelWorker):
    """The preference reward model: scalar score per sequence (Table 4)."""

    trainable = False
    score_column = "scores"

    def __init__(
        self,
        ctx: WorkerContext,
        model_config: TinyLMConfig,
        seed: int = 2,
        tag: str = "reward",
    ) -> None:
        if model_config.output_head != "scalar":
            raise ValueError("the reward model needs a scalar output head")
        super().__init__(ctx, model_config, seed=seed, tag=tag)

    @register(protocol="3d_proto")
    @shape_contract(
        inputs={"sequences": "B,L:int64", "?response_mask": "B,R"},
        outputs={"sequences": "B,L:int64", "scores": "B"},
    )
    def compute_reward(self, batch: DataBatch) -> Optional[DataBatch]:
        def compute(model: TinyLM):
            scores = _sequence_scores(model, batch)
            return batch.select(["sequences"]).union(
                DataBatch({self.score_column: scores}, meta=batch.meta)
            )

        return self.replica_forward(compute)


class TrainableRewardWorker(RewardWorker):
    """A reward model that can be *trained* on human preference pairs.

    §2.1: "The critic and reward models can be different LLMs fine-tuned on
    the human preference dataset."  Training uses the Bradley-Terry pairwise
    objective of InstructGPT [55]: maximise
    ``log sigmoid(r(chosen) - r(rejected))``.
    """

    trainable = True

    def __init__(
        self,
        ctx: WorkerContext,
        model_config: TinyLMConfig,
        seed: int = 2,
        tag: str = "reward",
        lr: float = 1e-3,
    ) -> None:
        super().__init__(ctx, model_config, seed=seed, tag=tag)
        self.lr = lr

    @register(protocol="3d_proto")
    @shape_contract(
        inputs={"chosen": "B,T:int64", "rejected": "B,T:int64"},
        returns="metrics",
    )
    def update_reward(self, batch: DataBatch):
        """One pairwise-preference update on ``chosen``/``rejected`` pairs."""

        def compute(model: TinyLM):
            r_chosen = model.sequence_reward(batch["chosen"])
            r_rejected = model.sequence_reward(batch["rejected"])
            margin = r_chosen - r_rejected
            # -log sigmoid(margin), numerically stable via softplus(-margin)
            loss = ((-margin).exp() + 1.0).log().mean()
            accuracy = float((margin.data > 0).mean())
            return loss, {
                "rm_loss": float(loss.item()),
                "rm_accuracy": accuracy,
                "rm_margin": float(margin.data.mean()),
            }

        return self.replica_train_step(compute)


class CostWorker(RewardWorker):
    """Safe-RLHF's cost model (§2.1): same architecture as the reward model.

    Mirrors Figure 6's reuse ("Initialize cost model by reusing the
    RewardWorker").  Besides the per-sample cost it also exposes its
    token-level scalar outputs as cost values for the cost-GAE computation.
    """

    score_column = "costs"

    def __init__(
        self,
        ctx: WorkerContext,
        model_config: TinyLMConfig,
        seed: int = 3,
        tag: str = "cost",
    ) -> None:
        super().__init__(ctx, model_config, seed=seed, tag=tag)

    @register(protocol="3d_proto")
    @shape_contract(
        inputs={"sequences": "B,L:int64", "?response_mask": "B,R"},
        outputs={
            "sequences": "B,L:int64",
            "costs": "B",
            "cost_values": "B,R",
        },
    )
    def compute_cost(self, batch: DataBatch) -> Optional[DataBatch]:
        """Per-sample cost plus token-level cost values (for cost GAE)."""

        def compute(model: TinyLM):
            prompt_len = batch.meta["prompt_length"]
            values = model.values(batch["sequences"]).data
            return batch.select(["sequences"]).union(
                DataBatch(
                    {
                        "costs": _sequence_scores(model, batch),
                        "cost_values": values[:, prompt_len - 1 : -1],
                    },
                    meta=batch.meta,
                )
            )

        return self.replica_forward(compute)


class RewardFunctionWorker(Worker):
    """A non-NN reward module wrapped as a remote function (§9).

    ``reward_fn`` maps response token arrays to per-sample scores — e.g. a
    sandbox pass/fail for code or an exact-match checker for math.  Runs on a
    single rank under the ``one_to_one`` protocol.
    """

    def __init__(
        self,
        ctx: WorkerContext,
        reward_fn: Callable[..., np.ndarray],
        score_column: str = "scores",
        pass_prompts: bool = False,
    ) -> None:
        super().__init__(ctx)
        self.reward_fn = reward_fn
        self.score_column = score_column
        #: When True the callable receives ``(prompts, responses)`` — needed
        #: for verifiable rewards that depend on the question (code tests,
        #: math answers, §9).
        self.pass_prompts = pass_prompts

    @register(protocol="one_to_one")
    @shape_contract(
        inputs={"sequences": "B,L:int64"},
        outputs={"sequences": "B,L:int64", "scores": "B"},
    )
    def compute_reward(self, batch: DataBatch) -> DataBatch:
        prompt_len = batch.meta["prompt_length"]
        responses = batch["sequences"][:, prompt_len:]
        if self.pass_prompts:
            prompts = batch["sequences"][:, :prompt_len]
            scores = np.asarray(
                self.reward_fn(prompts, responses), dtype=np.float64
            )
        else:
            scores = np.asarray(self.reward_fn(responses), dtype=np.float64)
        if scores.shape != (batch.batch_size,):
            raise ValueError(
                f"reward function returned shape {scores.shape}, expected "
                f"({batch.batch_size},)"
            )
        return batch.select(["sequences"]).union(
            DataBatch({self.score_column: scores}, meta=batch.meta)
        )

    @register(protocol="one_to_one")
    @shape_contract(
        inputs={"sequences": "B,L:int64"},
        outputs={
            "sequences": "B,L:int64",
            "costs": "B",
            "cost_values": "B,R",
        },
    )
    def compute_cost(self, batch: DataBatch) -> DataBatch:
        """Function-based safety cost for Safe-RLHF (the §9 pattern applied
        to the cost signal).

        Emits per-sample ``costs`` plus zero ``cost_values`` so the cost-GAE
        reduces to the cost-to-go of the programmatic signal.
        """
        prompt_len = batch.meta["prompt_length"]
        responses = batch["sequences"][:, prompt_len:]
        costs = np.asarray(self.reward_fn(responses), dtype=np.float64)
        if costs.shape != (batch.batch_size,):
            raise ValueError(
                f"cost function returned shape {costs.shape}, expected "
                f"({batch.batch_size},)"
            )
        return batch.select(["sequences"]).union(
            DataBatch(
                {
                    "costs": costs,
                    "cost_values": np.zeros(
                        (batch.batch_size, responses.shape[1]),
                        dtype=np.float64,
                    ),
                },
                meta=batch.meta,
            )
        )
