"""``ActorWorker``: generation, log-prob, and policy-update primitives (Table 4).

``generate_sequences`` runs the full 3D-HybridEngine workflow of Figure 7:
transition to the generation layout (step ①), per-replica KV-cached decoding
of its micro-batch (step ②), the result all-gather within micro-DP groups
(step ③), and the transition back to the training layout (step ④).
``update_actor`` implements the PPO / Safe-RLHF / GRPO policy losses on top
of the shared data-parallel training machinery.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

import dataclasses

from repro.data.batch import DataBatch
from repro.hybrid_engine.engine import HybridEngine3D
from repro.models.sampler import GenerationOutput, generate
from repro.models.tinylm import TinyLM
from repro.rlhf import losses as L
from repro.serving import RolloutServer, ServingConfig
from repro.single_controller.decorator import register, shape_contract
from repro.single_controller.worker import WorkerContext
from repro.models.tinylm import TinyLMConfig
from repro.workers.base import ThreeDParallelWorker


class ActorWorker(ThreeDParallelWorker):
    """The policy model undergoing RLHF."""

    def __init__(
        self,
        ctx: WorkerContext,
        model_config: TinyLMConfig,
        seed: int = 0,
        tag: str = "actor",
        lr: float = 1e-3,
        max_grad_norm: Optional[float] = 1.0,
        clip_ratio: float = 0.2,
        temperature: float = 1.0,
        max_new_tokens: int = 8,
        eos_token_id: Optional[int] = None,
        use_serving: bool = False,
        serving_config: Optional[ServingConfig] = None,
    ) -> None:
        super().__init__(
            ctx,
            model_config,
            seed=seed,
            tag=tag,
            lr=lr,
            max_grad_norm=max_grad_norm,
        )
        self.clip_ratio = clip_ratio
        self.temperature = temperature
        self.max_new_tokens = max_new_tokens
        #: With an EOS id, generation stops per sequence and the output
        #: batch carries a ``response_mask`` column the whole pipeline
        #: respects (losses/advantages ignore post-EOS padding).
        self.eos_token_id = eos_token_id
        #: Route generation through the continuous-batching RolloutServer
        #: (bit-exact with the sequential sampler in greedy mode).
        self.use_serving = use_serving
        self.serving_config = serving_config
        self._gen_calls = 0

    # -- engine plumbing -------------------------------------------------------------

    def _engine(self) -> HybridEngine3D:
        group = self.ctx.group
        engine = getattr(group, "hybrid_engine", None)
        if engine is None:
            engine = HybridEngine3D(group)
            group.hybrid_engine = engine
        return engine

    def _is_gen_replica_lead(self) -> bool:
        c = self.ctx.gen_coords
        return c.pg == 0 and c.tg == 0

    # -- Table 4 primitives --------------------------------------------------------------

    @register(protocol="3d_all_micro_dp")
    @shape_contract(
        inputs={"prompts": "B,P:int64"},
        outputs={
            "prompts": "B,P:int64",
            "sequences": "B,L:int64",
            "old_log_probs": "B,R",
            "?response_mask": "B,R",
        },
    )
    def generate_sequences(
        self,
        batch: DataBatch,
        do_sample: bool = True,
        max_new_tokens: Optional[int] = None,
    ) -> Optional[DataBatch]:
        """Generate responses for this rank's micro-batch of prompts.

        Returns prompt+response sequences plus the sampling log-probs (the
        behaviour policy's ``old_log_probs`` for PPO).
        """
        engine = self._engine()
        if self.ctx.local_rank == 0:
            engine.to_generation()  # Figure 7 step 1 (group-wide)
        self._gen_calls += 1

        if self._is_gen_replica_lead():
            full = engine.materialize_generation_replica(self)
            model = self._build_model(full, requires_grad=False)
            n_tokens = max_new_tokens or self.max_new_tokens
            if self.use_serving:
                out = self._serve_generate(
                    model, batch["prompts"], n_tokens, do_sample
                )
            else:
                # local_rank, not global_rank: sampling must not depend on
                # which physical devices host the pool, or recovery
                # re-placement onto survivors would diverge from the
                # uninterrupted run (§9).
                rng = np.random.default_rng(
                    (self.seed, self.ctx.local_rank, self._gen_calls)
                )
                out = generate(
                    model,
                    batch["prompts"],
                    max_new_tokens=n_tokens,
                    temperature=self.temperature,
                    greedy=not do_sample,
                    rng=rng,
                    eos_token_id=self.eos_token_id,
                )
            self.ctx.device.memory.alloc(
                f"{self.tag}/kv_cache", out.kv_cache_bytes
            )
            columns = {
                "prompts": batch["prompts"],
                "sequences": out.sequences,
                "old_log_probs": out.response_log_probs,
            }
            if out.response_mask is not None:
                columns["response_mask"] = out.response_mask
            self._stashed_output = DataBatch(
                columns, meta={"prompt_length": out.prompt_length}
            )
        result = self._stashed_output if self._is_gen_replica_lead() else None

        if self.ctx.local_rank == len(self.ctx.group.workers) - 1:
            self._gather_generation_results()  # Figure 7 step 3
            self._release_kv_caches()
            engine.to_training()  # Figure 7 step 4
        return result

    def _serve_generate(
        self,
        model: TinyLM,
        prompts: np.ndarray,
        max_new_tokens: int,
        do_sample: bool,
    ) -> GenerationOutput:
        """Serving-backed generation: route the micro-batch through a
        :class:`~repro.serving.RolloutServer` on this rank's device.

        Each prompt becomes one request; the engine decodes them with
        continuous batching and paged KV blocks charged against this
        worker's simulated device.  Results are reassembled into the same
        fixed-width :class:`GenerationOutput` the sequential sampler
        produces — in greedy mode the two are bit-exact per request.  The
        per-request rng seeds extend the worker's ``(seed, local_rank,
        gen_calls)`` discipline, so serving stays deterministic across
        recovery re-placement too.
        """
        base = self.serving_config or ServingConfig()
        config = dataclasses.replace(
            base,
            eos_token_id=self.eos_token_id,
            temperature=self.temperature,
            greedy=not do_sample,
            seed=(self.seed, self.ctx.local_rank, self._gen_calls),
        )
        controller = getattr(self.ctx.group, "controller", None)
        server = RolloutServer(
            model,
            config,
            device=self.ctx.device,
            tracer=getattr(controller, "tracer", None),
            metrics=getattr(controller, "metrics", None),
        )
        for row in prompts:
            server.submit(row, max_new_tokens=max_new_tokens)
        report = server.drain()

        batch, prompt_len = prompts.shape
        pad = (
            self.eos_token_id
            if config.pad_token_id is None
            else config.pad_token_id
        )
        sequences = np.concatenate(
            [
                prompts,
                np.full(
                    (batch, max_new_tokens), pad or 0, dtype=prompts.dtype
                ),
            ],
            axis=1,
        )
        log_probs = np.zeros((batch, max_new_tokens), dtype=np.float64)
        mask = np.zeros((batch, max_new_tokens), dtype=np.float64)
        for done in report.completed:
            i, n = done.request_id, done.response_length
            sequences[i, prompt_len : prompt_len + n] = done.response
            log_probs[i, :n] = done.log_probs
            mask[i, :n] = 1.0
        return GenerationOutput(
            sequences=sequences,
            response_log_probs=log_probs,
            prompt_length=prompt_len,
            kv_cache_bytes=report.peak_kv_bytes,
            response_mask=mask if self.eos_token_id is not None else None,
        )

    def _gather_generation_results(self) -> None:
        """Step ③: all-gather generated sequences within micro-DP groups."""
        gen = self.ctx.gen_topology
        assert gen is not None
        for group in gen.all_micro_dp_groups():
            leads = [
                self.ctx.peer(r)
                for r in group.ranks
                if isinstance(self.ctx.peer(r), ActorWorker)
                and self.ctx.peer(r)._is_gen_replica_lead()
            ]
            payload = sum(
                out._stashed_output.nbytes()
                for out in leads
                if out._stashed_output is not None
            )
            per_rank = (
                (group.size - 1) * payload // group.size if group.size > 1 else 0
            )
            group.record_traffic("gen_results_all_gather", per_rank)

    def _release_kv_caches(self) -> None:
        """Offload the KV cache to host memory after generation (§7)."""
        for worker in self.ctx.group.workers:
            worker.ctx.device.memory.free_tag(f"{worker.tag}/kv_cache")

    # -- checkpointing (§9: "... and Random Number Generator (RNG) states to
    # ensure system-wide consistency") -----------------------------------------

    def state_for_checkpoint(self):
        state = super().state_for_checkpoint()
        # the sampling rng stream is derived from (seed, rank, call count),
        # so persisting the counter restores bit-identical generation
        state["gen_calls"] = self._gen_calls
        return state

    def load_from_checkpoint(self, state) -> None:
        self._gen_calls = int(state.pop("gen_calls", 0))
        super().load_from_checkpoint(state)

    @register(protocol="3d_proto")
    @shape_contract(
        inputs={"sequences": "B,L:int64"},
        outputs={"sequences": "B,L:int64", "log_probs": "B,R"},
    )
    def compute_log_prob(self, batch: DataBatch) -> Optional[DataBatch]:
        """Recompute response log-probs under the current policy (Table 4)."""

        def compute(model: TinyLM):
            prompt_len = batch.meta["prompt_length"]
            logp = model.token_log_probs(batch["sequences"]).data
            return batch.select(["sequences"]).union(
                DataBatch(
                    {"log_probs": logp[:, prompt_len - 1 :]},
                    meta=batch.meta,
                )
            )

        return self.replica_forward(compute)

    @register(protocol="3d_proto")
    @shape_contract(inputs={"tokens": "B,T:int64"}, returns="metrics")
    def compute_loss(self, pretrain_batch: DataBatch) -> Optional[Dict[str, float]]:
        """Pretraining NLL on auxiliary data (PPO-ptx / Safe-RLHF, Table 4)."""

        def compute(model: TinyLM):
            logp = model.token_log_probs(pretrain_batch["tokens"])
            return {"pretrain_loss": float(L.pretrain_loss(logp).item())}

        return self.replica_forward(compute)

    @register(protocol="3d_proto")
    @shape_contract(inputs={"tokens": "B,T:int64"}, returns="metrics")
    def update_sft(self, batch: DataBatch) -> Optional[Dict[str, float]]:
        """Supervised fine-tuning step: next-token NLL on ``tokens``.

        The stage that precedes RLHF in the alignment pipeline (§1: LLMs are
        "trained on domain-specific datasets via supervised fine-tuning");
        reuses the same data-parallel training machinery as ``update_actor``.
        """

        def compute(model: TinyLM):
            logp = model.token_log_probs(batch["tokens"])
            loss = L.pretrain_loss(logp)
            return loss, {"sft_loss": float(loss.item())}

        return self.replica_train_step(compute)

    @register(protocol="3d_proto")
    @shape_contract(
        inputs={
            "sequences": "B,L:int64",
            "old_log_probs": "B,R",
            "advantages": "B,R",
            "?response_mask": "B,R",
            "?importance_weights": "B,R",
            "?cost_advantages": "B,R",
            "?ref_log_probs": "B,R",
        },
        returns="metrics",
    )
    def update_actor(
        self,
        batch: DataBatch,
        loss_func: str = "ppo",
        kl_coef: float = 0.04,
        lagrange_multiplier: float = 0.0,
        pretrain_batch: Optional[DataBatch] = None,
        ptx_coef: float = 0.1,
    ) -> Optional[Dict[str, float]]:
        """One policy-gradient update on this replica's chunk (Table 4).

        ``loss_func`` selects the algorithm's objective: ``"ppo"``/``"remax"``
        (clipped surrogate), ``"safe-rlhf"`` (PPO-Lagrangian, optionally with
        the pretraining auxiliary loss), or ``"grpo"`` (clip + k3 KL).

        A batch carrying an ``importance_weights`` column (attached by the
        async pipeline when experience is stale) has its advantages scaled
        by the truncated importance weights in the PPO/GRPO objectives.
        """

        def compute(model: TinyLM):
            prompt_len = batch.meta["prompt_length"]
            logp = model.token_log_probs(batch["sequences"])[
                :, prompt_len - 1 :
            ]
            old = batch["old_log_probs"]
            advantages = batch["advantages"]
            mask = batch["response_mask"] if "response_mask" in batch else None
            iw = (
                batch["importance_weights"]
                if "importance_weights" in batch
                else None
            )
            if loss_func in ("ppo", "remax"):
                loss, metrics = L.ppo_policy_loss(
                    logp, old, advantages, self.clip_ratio,
                    response_mask=mask,
                    importance_weights=iw,
                )
            elif loss_func == "safe-rlhf":
                loss, metrics = L.safe_rlhf_policy_loss(
                    logp,
                    old,
                    advantages,
                    batch["cost_advantages"],
                    lagrange_multiplier,
                    self.clip_ratio,
                    response_mask=mask,
                )
                if pretrain_batch is not None:
                    ptx_logp = model.token_log_probs(pretrain_batch["tokens"])
                    ptx = L.pretrain_loss(ptx_logp)
                    loss = loss + ptx_coef * ptx
                    metrics = dict(metrics)
                    metrics["pretrain_loss"] = float(ptx.item())
            elif loss_func == "grpo":
                loss, metrics = L.grpo_policy_loss(
                    logp,
                    old,
                    advantages,
                    batch["ref_log_probs"],
                    self.clip_ratio,
                    kl_coef,
                    response_mask=mask,
                    importance_weights=iw,
                )
            else:
                raise ValueError(f"unknown actor loss {loss_func!r}")
            return loss, metrics

        return self.replica_train_step(compute)
