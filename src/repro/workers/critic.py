"""``CriticWorker``: value estimation and value-function training (Table 4)."""

from __future__ import annotations

from typing import Dict, Optional

from repro.data.batch import DataBatch
from repro.models.tinylm import TinyLM, TinyLMConfig
from repro.rlhf import losses as L
from repro.single_controller.decorator import register, shape_contract
from repro.single_controller.worker import WorkerContext
from repro.workers.base import ThreeDParallelWorker


class CriticWorker(ThreeDParallelWorker):
    """The value model: forward inference in preparation, training in stage 3."""

    def __init__(
        self,
        ctx: WorkerContext,
        model_config: TinyLMConfig,
        seed: int = 1,
        tag: str = "critic",
        lr: float = 1e-3,
        max_grad_norm: Optional[float] = 1.0,
        value_clip: float = 0.2,
    ) -> None:
        if model_config.output_head != "scalar":
            raise ValueError("the critic needs a scalar output head")
        super().__init__(
            ctx,
            model_config,
            seed=seed,
            tag=tag,
            lr=lr,
            max_grad_norm=max_grad_norm,
        )
        self.value_clip = value_clip

    @register(protocol="3d_proto")
    @shape_contract(
        inputs={"sequences": "B,L:int64"},
        outputs={"sequences": "B,L:int64", "values": "B,R"},
    )
    def compute_values(self, batch: DataBatch) -> Optional[DataBatch]:
        """Values of each response position, ``(batch, response_len)``.

        The value at response step ``t`` is the scalar head's output on the
        prefix ending just before token ``t`` is emitted.
        """

        def compute(model: TinyLM):
            prompt_len = batch.meta["prompt_length"]
            values = model.values(batch["sequences"]).data
            return batch.select(["sequences"]).union(
                DataBatch(
                    {"values": values[:, prompt_len - 1 : -1]},
                    meta=batch.meta,
                )
            )

        return self.replica_forward(compute)

    @register(protocol="3d_proto")
    @shape_contract(
        inputs={
            "sequences": "B,L:int64",
            "values": "B,R",
            "returns": "B,R",
            "?response_mask": "B,R",
        },
        returns="metrics",
    )
    def update_critic(
        self,
        batch: DataBatch,
        loss_func: str = "ppo",
    ) -> Optional[Dict[str, float]]:
        """Clipped squared-error regression of values onto returns (Table 4).

        ``loss_func`` selects the return column: ``"ppo"``/``"remax"`` use
        ``returns``; ``"safe-rlhf"`` also has a cost critic elsewhere, the
        reward critic here still regresses onto ``returns``.
        """
        if loss_func not in ("ppo", "remax", "safe-rlhf", "grpo"):
            raise ValueError(f"unknown critic loss {loss_func!r}")

        def compute(model: TinyLM):
            prompt_len = batch.meta["prompt_length"]
            values = model.values(batch["sequences"])[:, prompt_len - 1 : -1]
            mask = batch["response_mask"] if "response_mask" in batch else None
            return L.value_loss(
                values,
                batch["values"],
                batch["returns"],
                self.value_clip,
                response_mask=mask,
            )

        return self.replica_train_step(compute)
