"""Sharded-model worker bases: ``3DParallelWorker``, ``FSDPWorker``, ``ZeROWorker``.

Each rank stores only its weight shard (Megatron ``(pp, tp)`` rectangles for
the 3D layout; flat ZeRO-3/FSDP slices for the DP layouts), registered in the
simulated device's memory ledger.  Compute follows a gather-compute-scatter
discipline per model replica:

* the replica *lead* rank materialises full weights by an all-gather over the
  replica's ranks (real arrays, traffic metered),
* it runs the forward/backward on the replica's batch chunk,
* for training, gradients are averaged across replicas with a real
  all-reduce, every lead applies an identical Adam step, and the updated
  weights are scattered back to the resting shards.

Data-parallel semantics (per-replica batches, gradient averaging, identical
updates) are therefore *real*; tensor/pipeline parallel arithmetic is
simulated at the storage/communication level, with its latency modelled by
:mod:`repro.perf` — the same division of labour as the paper's own
``simu``-based auto-mapping (Appendix C).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.comm import collectives
from repro.comm.groups import ProcessGroup
from repro.models.adam import Adam
from repro.models.autograd import Tensor
from repro.models.sharding import (
    flat_shard_params,
    gather_flat_shards,
    gather_full_params,
    shard_nbytes,
    shard_params,
)
from repro.models.tinylm import TinyLM, TinyLMConfig
from repro.single_controller.worker import Worker, WorkerContext

#: Extra training-state bytes per parameter byte: gradient (1x) plus
#: optimizer master copy and two Adam moments (3x), mirroring mixed-precision
#: accounting where the paper stores FP32 grads/optimizer for BF16 params.
GRAD_FACTOR = 1.0
OPTIM_FACTOR = 3.0


class ShardedModelWorker(Worker):
    """Common machinery for all parallel layouts; subclasses pick the layout."""

    #: "3d" shards by (pp, tp) with DP replicas; "flat" shards every tensor
    #: across all ranks with every rank a DP replica (FSDP / ZeRO-3).
    layout = "3d"
    #: Whether this model trains (needs gradients + optimizer memory).
    trainable = True

    def __init__(
        self,
        ctx: WorkerContext,
        model_config: TinyLMConfig,
        seed: int = 0,
        tag: str = "model",
        lr: float = 1e-3,
        max_grad_norm: Optional[float] = 1.0,
    ) -> None:
        super().__init__(ctx)
        self.model_config = model_config
        self.tag = tag
        self.seed = seed
        self.lr = lr
        self.max_grad_norm = max_grad_norm

        # identical init on every rank (same seed), then keep only our shard —
        # exactly how Megatron ranks materialise their partition
        full = TinyLM(model_config, seed=seed)
        self._shapes = {k: v.shape for k, v in full.state_dict().items()}
        self.shard = self._extract_shard(full.state_dict())
        self.ctx.device.memory.alloc(f"{tag}/params", shard_nbytes(self.shard))
        if self.trainable:
            nbytes = shard_nbytes(self.shard)
            self.ctx.device.memory.alloc(f"{tag}/grads", int(nbytes * GRAD_FACTOR))
            self.ctx.device.memory.alloc(f"{tag}/optim", int(nbytes * OPTIM_FACTOR))

        # replica-lead state
        self._optimizer: Optional[Adam] = None
        self._stashed_output: Any = None
        self._stashed_grads: Optional[Dict[str, np.ndarray]] = None
        self._stashed_state: Optional[Dict[str, np.ndarray]] = None
        self._stashed_metrics: Optional[Dict[str, float]] = None
        # Seeded by *local* rank: the worker's SPMD identity within its
        # group, not the physical device it happens to occupy — so a job
        # recovered onto surviving devices reproduces bit-exactly (§9).
        self._rng = np.random.default_rng((seed, ctx.local_rank))

    # -- layout ---------------------------------------------------------------

    def _extract_shard(self, state: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        if self.layout == "flat":
            return flat_shard_params(
                state, self.ctx.local_rank, self.ctx.train_topology.world_size
            )
        c = self.ctx.coords
        cfg = self.ctx.train_topology.config
        return shard_params(
            state,
            tp_rank=c.t,
            tp_size=cfg.tp,
            pp_rank=c.p,
            pp_size=cfg.pp,
            n_layers=self.model_config.n_layers,
        )

    def set_shard(self, shard: Dict[str, np.ndarray]) -> None:
        """Replace the resting shard (resharding push from the replica lead)."""
        self.shard = {k: np.asarray(v).copy() for k, v in shard.items()}
        self.ctx.device.memory.resize(
            f"{self.tag}/params", shard_nbytes(self.shard)
        )

    # -- replica structure ---------------------------------------------------------

    @property
    def replica_group(self) -> ProcessGroup:
        """Ranks that together hold one full model replica."""
        if self.layout == "flat":
            return ProcessGroup(
                [w.ctx.global_rank for w in self.ctx.group.workers],
                name=f"{self.tag}/flat",
                meter=self.ctx.train_topology.meter,
            )
        return self.ctx.mp_group

    @property
    def is_replica_lead(self) -> bool:
        if self.layout == "flat":
            return True
        return self.ctx.is_replica_lead

    def _lead_of_replica(self) -> "ShardedModelWorker":
        if self.layout == "flat":
            return self
        lead_rank = self.ctx.train_topology.global_rank_at(
            0, 0, self.ctx.coords.d
        )
        worker = self.ctx.peer(lead_rank)
        assert isinstance(worker, ShardedModelWorker)
        return worker

    def _replica_leads(self) -> List["ShardedModelWorker"]:
        """Lead worker of every replica, in replica order."""
        leads = []
        for worker in self.ctx.group.workers:
            assert isinstance(worker, ShardedModelWorker)
            if worker.is_replica_lead:
                leads.append(worker)
        return leads

    def _is_last_worker(self) -> bool:
        return self.ctx.local_rank == len(self.ctx.group.workers) - 1

    # -- materialisation -----------------------------------------------------------

    def materialize_full_state(self) -> Dict[str, np.ndarray]:
        """All-gather the replica's shards into a full state dict (metered)."""
        group = self.replica_group
        peers = [self.ctx.peer(r) for r in group.ranks]
        shards = [p.shard for p in peers]
        total = sum(shard_nbytes(s) for s in shards)
        per_rank = (
            (group.size - 1) * total // group.size if group.size > 1 else 0
        )
        group.record_traffic("all_gather_params", per_rank)
        if self.layout == "flat":
            return gather_flat_shards(shards, self._shapes)
        cfg = self.ctx.train_topology.config
        by_coord = {}
        for peer in peers:
            c = peer.ctx.coords
            by_coord[(c.p, c.t)] = peer.shard
        return gather_full_params(by_coord, tp_size=cfg.tp, pp_size=cfg.pp)

    def _build_model(
        self, state: Dict[str, np.ndarray], requires_grad: bool
    ) -> TinyLM:
        params = {
            name: Tensor(arr.copy(), requires_grad=requires_grad)
            for name, arr in state.items()
        }
        return TinyLM(self.model_config, params=params)

    def _push_state_to_replica(self, state: Dict[str, np.ndarray]) -> None:
        """Re-shard an updated full state back to the replica's ranks."""
        group = self.replica_group
        total = sum(int(np.prod(s)) for s in self._shapes.values()) * 8
        per_rank = total // group.size if group.size > 1 else 0
        group.record_traffic("scatter_params", per_rank)
        for rank in group.ranks:
            peer = self.ctx.peer(rank)
            assert isinstance(peer, ShardedModelWorker)
            peer.set_shard(peer._extract_shard(state))

    # -- forward-style compute -------------------------------------------------------

    def replica_forward(
        self,
        compute: Callable[[TinyLM], Any],
    ) -> Any:
        """Run ``compute`` once per replica; return the result on collect ranks.

        Every rank of a replica receives the same (DP-distributed) inputs; the
        replica lead materialises the full model and computes.  Collect ranks
        (which execute after the lead, by rank ordering) fetch the stashed
        result, so whichever rank the transfer protocol collects from has it.
        """
        if self.is_replica_lead:
            model = self._build_model(self.materialize_full_state(), False)
            self._stashed_output = compute(model)
        if self.layout == "flat" or self.ctx.is_collect_rank:
            return self._lead_of_replica()._stashed_output
        return None

    # -- training compute ---------------------------------------------------------------

    def replica_train_step(
        self,
        loss_fn: Callable[[TinyLM], Tuple[Tensor, Dict[str, float]]],
    ) -> Optional[Dict[str, float]]:
        """One data-parallel training step across all replicas.

        Phase 1 (per replica lead): materialise weights, compute loss on the
        replica's chunk, backward, stash gradients.  Phase 2 (triggered by the
        group's last rank, once all leads have gradients): all-reduce
        gradients across replicas, identical Adam step on every lead, and
        scatter the updated weights back to resting shards.
        """
        if self.is_replica_lead:
            state = self.materialize_full_state()
            model = self._build_model(state, requires_grad=True)
            loss, metrics = loss_fn(model)
            loss.backward()
            self._stashed_grads = {
                name: p.grad if p.grad is not None else np.zeros_like(p.data)
                for name, p in model.params.items()
            }
            self._stashed_metrics = metrics
            self._stashed_state = state

        if self._is_last_worker():
            self._sync_and_update_all_replicas()

        if self.layout == "flat" or self.ctx.is_collect_rank:
            return self._lead_of_replica()._stashed_metrics
        return None

    def _sync_and_update_all_replicas(self) -> None:
        leads = self._replica_leads()
        if any(lead._stashed_grads is None for lead in leads):
            raise RuntimeError(
                f"{self.tag}: gradient sync triggered before all replica "
                "leads computed gradients"
            )
        meter = self.ctx.train_topology.meter
        dp_group = ProcessGroup(
            [lead.ctx.global_rank for lead in leads],
            name=f"{self.tag}/dp_grads",
            meter=meter,
        )
        # every replica lead contributes its gradients to one shared
        # all-reduce buffer; the contribution order is deterministic (leads
        # in rank order), which the access log records for race analysis
        controller = (
            self.ctx.group.controller if self.ctx.group is not None else None
        )
        if controller is not None and hasattr(controller, "record_access"):
            for lead in leads:
                controller.record_access(
                    "write",
                    f"gradsync[{self.tag}]",
                    rank=lead.ctx.global_rank,
                    ordered=True,
                    note="all_reduce",
                )
        # average gradients across replicas with a real all-reduce per tensor
        names = list(leads[0]._stashed_grads)
        for name in names:
            reduced = collectives.all_reduce(
                [lead._stashed_grads[name] for lead in leads],
                dp_group,
                op="mean",
            )
            for lead, grad in zip(leads, reduced):
                lead._stashed_grads[name] = grad
        for lead in leads:
            lead._apply_update()

    def _apply_update(self) -> None:
        """Adam step on this lead's materialised state, then re-shard."""
        assert self._stashed_grads is not None
        model = self._build_model(self._stashed_state, requires_grad=True)
        for name, p in model.params.items():
            p.grad = self._stashed_grads[name]
        if self._optimizer is None:
            self._optimizer = Adam(
                model.params, lr=self.lr, max_grad_norm=self.max_grad_norm
            )
        else:
            # rebind persistent moments to the fresh Tensor objects
            self._optimizer.params = model.params
        self._optimizer.step()
        self._push_state_to_replica(model.state_dict())
        self._stashed_grads = None
        self._stashed_state = None

    # -- checkpointing ------------------------------------------------------------------

    def state_for_checkpoint(self) -> Dict[str, Any]:
        state: Dict[str, Any] = {
            f"shard::{name}": arr for name, arr in self.shard.items()
        }
        if self._optimizer is not None:
            state["optim_step"] = self._optimizer.step_count
            for name, m in self._optimizer._m.items():
                state[f"adam_m::{name}"] = m
            for name, v in self._optimizer._v.items():
                state[f"adam_v::{name}"] = v
        return state

    def load_from_checkpoint(self, state: Dict[str, Any]) -> None:
        shard = {
            name[len("shard::") :]: np.asarray(arr)
            for name, arr in state.items()
            if name.startswith("shard::")
        }
        if set(shard) != set(self.shard):
            raise ValueError(
                f"{self.tag}: checkpoint shard keys mismatch on rank "
                f"{self.ctx.global_rank}"
            )
        self.set_shard(shard)
        if "optim_step" in state:
            moments_m = {
                name[len("adam_m::") :]: np.asarray(arr)
                for name, arr in state.items()
                if name.startswith("adam_m::")
            }
            moments_v = {
                name[len("adam_v::") :]: np.asarray(arr)
                for name, arr in state.items()
                if name.startswith("adam_v::")
            }
            placeholder = {
                name: Tensor(np.zeros(self._shapes[name]), requires_grad=True)
                for name in self._shapes
            }
            self._optimizer = Adam(
                placeholder, lr=self.lr, max_grad_norm=self.max_grad_norm
            )
            self._optimizer.step_count = int(state["optim_step"])
            self._optimizer._m = moments_m
            self._optimizer._v = moments_v


class ThreeDParallelWorker(ShardedModelWorker):
    """The paper's ``3DParallelWorker`` base class (§4.1)."""

    layout = "3d"


class FSDPWorker(ShardedModelWorker):
    """Fully-sharded data parallel base class (§4.1)."""

    layout = "flat"


class ZeROWorker(ShardedModelWorker):
    """ZeRO-3 data parallel base class (§4.1).

    Functionally identical to FSDP full-shard; kept distinct so placement and
    baseline models can select it by name, and so the analytical layer can
    attach ZeRO-specific communication costs.
    """

    layout = "flat"
