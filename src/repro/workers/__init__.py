"""Model worker classes: the primitive APIs of the RLHF dataflow (Table 4).

``ActorWorker`` exposes ``generate_sequences`` / ``compute_log_prob`` /
``compute_loss`` / ``update_actor``; ``CriticWorker`` exposes
``compute_values`` / ``update_critic``; ``ReferenceWorker`` and
``RewardWorker`` expose their forward passes.  All inherit a sharded-model
base (the reproduction's ``3DParallelWorker`` / ``FSDPWorker`` /
``ZeROWorker``) that stores each rank's weight shard, materialises full
replicas through metered collectives, and keeps data-parallel training
semantics real (per-replica batches, gradient all-reduce, identical Adam
updates).
"""

from repro.workers.base import (
    FSDPWorker,
    ShardedModelWorker,
    ThreeDParallelWorker,
    ZeROWorker,
)
from repro.workers.actor import ActorWorker
from repro.workers.critic import CriticWorker
from repro.workers.scorers import (
    CostWorker,
    ReferenceWorker,
    RewardFunctionWorker,
    RewardWorker,
    TrainableRewardWorker,
)

__all__ = [
    "ActorWorker",
    "CostWorker",
    "CriticWorker",
    "FSDPWorker",
    "ReferenceWorker",
    "RewardFunctionWorker",
    "RewardWorker",
    "ShardedModelWorker",
    "ThreeDParallelWorker",
    "TrainableRewardWorker",
    "ZeROWorker",
]
