"""Shared JSON sanitizer for manifests, reports, and trace exports.

Numpy scalar types (``np.float32``, ``np.int64``, 0-d arrays) leak into
almost every dict the functional layer produces — worker checkpoint state,
trainer metric histories, span attributes — and crash ``json.dumps`` unless
coerced.  PR 1 fixed this for checkpoint manifests only; this module hoists
the sanitizer so every serialization path (checkpoints, run reports, Chrome
traces, metrics dumps) shares one set of coercion rules.
"""

from __future__ import annotations

from typing import Any, Type

import numpy as np


def json_safe(
    value: Any, where: str = "value", error: Type[Exception] = ValueError
) -> Any:
    """Coerce ``value`` into JSON-serializable Python types.

    Args:
        where: Dotted path used in error messages to name the offending key.
        error: Exception class raised on non-serializable values (callers
            with typed error hierarchies pass their own, e.g.
            ``CheckpointError``).
    """
    if isinstance(value, np.ndarray):
        if value.ndim == 0:
            return value.item()
        raise error(
            f"non-scalar array at {where!r} cannot be embedded in JSON; "
            "store it out-of-band (e.g. an .npz sidecar)"
        )
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {str(k): json_safe(v, f"{where}.{k}", error) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v, f"{where}[{i}]", error) for i, v in enumerate(value)]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise error(
        f"cannot serialize {type(value).__name__} at {where!r} to JSON"
    )
