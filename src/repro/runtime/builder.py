"""Build a complete functional RLHF system from a placement plan.

``build_rlhf_system`` is the reproduction of the paper's §3 workflow: the
user supplies model specifications, a device placement (hand-written or from
the auto-mapping algorithm), and per-model parallelism strategies; the single
controller initialises worker groups on the virtualised resource pools and
returns a ready-to-run trainer.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.config import ClusterSpec
from repro.models.tinylm import TinyLMConfig
from repro.parallel.topology import GenGroupingMode
from repro.rlhf.core import AlgoType
from repro.rlhf.trainers import (
    GRPOTrainer,
    PPOTrainer,
    ReMaxTrainer,
    RlhfTrainerBase,
    SafeRLHFTrainer,
    TrainerConfig,
)
from repro.runtime.placement import PlacementPlan
from repro.single_controller import ResourcePool, SingleController, WorkerGroup
from repro.workers import (
    ActorWorker,
    CostWorker,
    CriticWorker,
    ReferenceWorker,
    RewardFunctionWorker,
    RewardWorker,
)

_TRAINERS = {
    AlgoType.PPO: PPOTrainer,
    AlgoType.REMAX: ReMaxTrainer,
    AlgoType.SAFE_RLHF: SafeRLHFTrainer,
    AlgoType.GRPO: GRPOTrainer,
}

_MODELS_BY_ALGO = {
    AlgoType.PPO: ("actor", "critic", "reference", "reward"),
    AlgoType.REMAX: ("actor", "reference", "reward"),
    AlgoType.SAFE_RLHF: ("actor", "critic", "reference", "reward", "cost"),
    AlgoType.GRPO: ("actor", "reference", "reward"),
}

_WORKER_CLASSES = {
    "actor": ActorWorker,
    "critic": CriticWorker,
    "reference": ReferenceWorker,
    "reward": RewardWorker,
    "cost": CostWorker,
}


@dataclasses.dataclass
class RlhfSystem:
    """A constructed RLHF job: controller, worker groups, and the trainer."""

    controller: SingleController
    groups: Dict[str, WorkerGroup]
    trainer: RlhfTrainerBase
    plan: PlacementPlan

    def group(self, model: str) -> WorkerGroup:
        return self.groups[model]


def required_models(algo: AlgoType) -> tuple:
    """Model roles an algorithm's dataflow contains (Figure 1)."""
    return _MODELS_BY_ALGO[AlgoType(algo)]


def build_rlhf_system(
    algo: AlgoType,
    plan: PlacementPlan,
    actor_config: TinyLMConfig,
    cluster_spec: Optional[ClusterSpec] = None,
    trainer_config: Optional[TrainerConfig] = None,
    critic_config: Optional[TinyLMConfig] = None,
    gen_mode: GenGroupingMode = GenGroupingMode.HYBRIDFLOW,
    reward_fn: Optional[Callable[..., np.ndarray]] = None,
    reward_fn_pass_prompts: bool = False,
    cost_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    max_new_tokens: int = 8,
    temperature: float = 1.0,
    lr: float = 1e-3,
    seed: int = 0,
    pretrain_dataset=None,
    cluster=None,
    eos_token_id: Optional[int] = None,
    use_serving: bool = False,
    serving_config=None,
) -> RlhfSystem:
    """Construct controller, pools, worker groups, and trainer.

    Args:
        algo: Which RLHF dataflow to build (Figure 1).
        plan: Device placement plus per-model parallelism.
        actor_config: TinyLM architecture of the actor/reference.
        critic_config: Architecture of critic/reward/cost models (scalar
            head added automatically); defaults to the actor's trunk.
        gen_mode: Generation parallel-grouping method for the HybridEngine.
        reward_fn: When given, the reward model is replaced by a non-NN
            reward function worker on a single GPU (§9); the plan must then
            assign ``"reward"`` to a 1-GPU pool.
        pretrain_dataset: Optional pretraining prompts for Safe-RLHF's
            auxiliary loss.
        cluster: Re-use an existing :class:`~repro.cluster.SimCluster`
            instead of materialising ``cluster_spec`` — the recovery path
            passes the surviving cluster back in so re-placement runs on
            the devices that are still alive (§9).
        eos_token_id: Generation stops per sequence at this token; the
            pipeline then carries a ``response_mask`` column so losses and
            advantages ignore post-EOS padding.
        use_serving: Route actor generation through the continuous-batching
            :class:`~repro.serving.RolloutServer` instead of the lock-step
            sequential sampler (bit-exact per request in greedy mode).
        serving_config: Optional :class:`~repro.serving.ServingConfig`
            overriding the serving engine's defaults (slots, block size,
            SLOs); eos/temperature/seed fields are filled in per call.
    """
    algo = AlgoType(algo)
    models = required_models(algo)
    missing = [m for m in models if m not in plan.assignments]
    if missing:
        raise ValueError(f"placement plan lacks assignments for {missing}")
    if plan.assignments["actor"].gen_parallel is None:
        raise ValueError("the actor assignment needs a gen_parallel config")

    if critic_config is None:
        critic_config = dataclasses.replace(actor_config, output_head="scalar")
    lm_config = actor_config
    scalar_config = critic_config

    controller = SingleController(cluster_spec, cluster=cluster)
    pools: Dict[str, ResourcePool] = {
        name: controller.create_pool(n, name=name)
        for name, n in plan.pools.items()
    }

    worker_kwargs: Dict[str, Dict[str, Any]] = {
        "actor": dict(
            model_config=lm_config,
            seed=seed,
            lr=lr,
            temperature=temperature,
            max_new_tokens=max_new_tokens,
            eos_token_id=eos_token_id,
            use_serving=use_serving,
            serving_config=serving_config,
        ),
        "critic": dict(model_config=scalar_config, seed=seed + 1, lr=lr),
        "reference": dict(model_config=lm_config, seed=seed),
        "reward": dict(model_config=scalar_config, seed=seed + 2),
        "cost": dict(model_config=scalar_config, seed=seed + 3),
    }

    groups: Dict[str, WorkerGroup] = {}
    for model in models:
        assignment = plan.assignments[model]
        worker_cls = _WORKER_CLASSES[model]
        kwargs = worker_kwargs[model]
        if model == "reward" and reward_fn is not None:
            worker_cls = RewardFunctionWorker
            kwargs = dict(
                reward_fn=reward_fn, pass_prompts=reward_fn_pass_prompts
            )
        if model == "cost" and cost_fn is not None:
            worker_cls = RewardFunctionWorker
            kwargs = dict(reward_fn=cost_fn, score_column="costs")
        groups[model] = WorkerGroup(
            worker_cls,
            pools[assignment.pool],
            parallel_config=assignment.parallel,
            gen_config=assignment.gen_parallel,
            gen_mode=gen_mode,
            name=model,
            controller=controller,
            worker_kwargs=kwargs,
        )

    trainer_cls = _TRAINERS[algo]
    trainer_args: Dict[str, Any] = dict(
        actor=groups["actor"],
        reference=groups["reference"],
        reward=groups["reward"],
        critic=groups.get("critic"),
        cost=groups.get("cost"),
        config=trainer_config,
    )
    if algo is AlgoType.SAFE_RLHF:
        trainer_args["pretrain_dataset"] = pretrain_dataset
    trainer = trainer_cls(**trainer_args)
    return RlhfSystem(
        controller=controller, groups=groups, trainer=trainer, plan=plan
    )
