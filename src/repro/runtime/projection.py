"""Project a functional dataflow trace onto full-scale analytical timing.

The functional layer runs miniature models, but its controller trace is the
*real* RLHF dataflow DAG.  This module assigns each traced call the latency
the analytical simulators predict for a full-scale model under the traced
placement — bridging the two layers: write and debug a dataflow at toy
scale, then read off its projected iteration time and per-pool utilisation
on (simulated) Llama-class models and A100 clusters.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.config import ClusterSpec, ModelSpec, ParallelConfig, RlhfWorkload
from repro.perf.compute import inference_latency, training_latency
from repro.perf.generation import generation_latency
from repro.runtime.builder import RlhfSystem
from repro.runtime.timeline import Timeline, build_timeline
from repro.single_controller.controller import ExecutionRecord

#: Which analytical simulator each primitive API maps to (Table 4's
#: "Computation" column).
_METHOD_KIND = {
    "generate_sequences": "generation",
    "update_actor": "training",
    "update_critic": "training",
    "compute_values": "inference",
    "compute_ref_log_prob": "inference",
    "compute_reward": "inference",
    "compute_cost": "inference",
    "compute_log_prob": "inference",
    "compute_loss": "inference",
}


def perf_duration_fn(
    system: RlhfSystem,
    model_specs: Mapping[str, ModelSpec],
    workload: RlhfWorkload,
    cluster: ClusterSpec,
    gen_tp: Optional[int] = None,
    gen_pp: int = 1,
):
    """A timeline duration function backed by the perf simulators.

    Args:
        system: The functional system whose trace is being projected; its
            worker groups supply each model's pool size and parallel shape
            (scaled to the projection cluster by keeping the MP sizes and
            widening DP).
        model_specs: Full-scale architecture per model role.
        gen_tp/gen_pp: Generation parallel sizes for the actor (defaults to
            its training TP).
    """
    scaled: Dict[str, ParallelConfig] = {}
    total = sum(g.resource_pool.size for g in set(system.groups.values()))
    for role, group in system.groups.items():
        cfg = group.train_topology.config
        share = group.resource_pool.size / total
        n_gpus = max(
            cfg.model_parallel_size,
            int(cluster.n_gpus * share)
            // cfg.model_parallel_size
            * cfg.model_parallel_size,
        )
        scaled[role] = ParallelConfig(
            pp=cfg.pp, tp=cfg.tp, dp=n_gpus // cfg.model_parallel_size
        )

    def duration(record: ExecutionRecord) -> float:
        role = record.group
        kind = _METHOD_KIND.get(record.method)
        if role not in model_specs or kind is None:
            return 0.01  # non-NN workers (reward functions etc.)
        spec = model_specs[role]
        parallel = scaled[role]
        if kind == "generation":
            tp = gen_tp or parallel.tp
            n_replicas = max(1, parallel.world_size // (tp * gen_pp))
            return generation_latency(
                spec, cluster, tp, gen_pp, n_replicas, workload
            ).total
        if kind == "training":
            # one traced update call covers one minibatch of the epoch
            n_updates = max(1, workload.ppo_updates_per_epoch)
            return (
                training_latency(spec, cluster, parallel, workload) / n_updates
            )
        return inference_latency(spec, cluster, parallel, workload)

    return duration


def project_timeline(
    system: RlhfSystem,
    model_specs: Mapping[str, ModelSpec],
    workload: RlhfWorkload,
    cluster: ClusterSpec,
    gen_tp: Optional[int] = None,
    gen_pp: int = 1,
) -> Timeline:
    """Schedule the system's trace with projected full-scale durations."""
    return build_timeline(
        system.controller,
        duration_fn=perf_duration_fn(
            system, model_specs, workload, cluster, gen_tp=gen_tp, gen_pp=gen_pp
        ),
    )
