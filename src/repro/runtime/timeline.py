"""Simulated-time execution timelines from a controller trace (Figure 3).

The single controller records every remote call with its dataflow
dependencies (via future provenance).  This module replays that trace under
the paper's asynchronous-execution semantics (§4.1): a call starts as soon
as (a) its input futures' producers have finished and (b) its pool is free —
models on disjoint pools overlap, colocated models time-share.

The result is the per-pool Gantt chart of Figure 3, with the idle-time
accounting behind the paper's placement observations ("actor and critic ...
incurring 1/3 of their GPU time being idle, during other RLHF stages").
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.single_controller.controller import ExecutionRecord, SingleController

#: Default duration (simulated seconds) per call kind; a crude stand-in used
#: when no duration function is supplied.  Generation dominates an RLHF
#: iteration (§2.3), updates cost forward+backward, scoring one forward.
DEFAULT_DURATIONS = {
    "generate_sequences": 6.0,
    "update_actor": 3.0,
    "update_critic": 3.0,
    "compute_values": 1.0,
    "compute_ref_log_prob": 1.0,
    "compute_reward": 1.0,
    "compute_cost": 1.0,
    "compute_log_prob": 1.0,
    "compute_loss": 1.0,
}
FALLBACK_DURATION = 1.0

#: Methods already warned about falling back to ``FALLBACK_DURATION`` — the
#: warning fires once per method per process so perf numbers are never
#: silently fabricated, without spamming every rebuild.
_FALLBACK_WARNED: set = set()

DurationFn = Callable[[ExecutionRecord], float]


def _marker(index: int) -> str:
    """Unique legend marker for the ``index``-th event of a pool.

    ``A``..``Z`` for the first 26 events, then ``A1``..``Z1``, ``A2``..;
    unlike the old ``index % 26`` scheme, two events never share a marker.
    """
    letter = chr(ord("A") + index % 26)
    cycle = index // 26
    return letter if cycle == 0 else f"{letter}{cycle}"


@dataclasses.dataclass(frozen=True)
class TimelineEvent:
    """One scheduled call."""

    seq: int
    name: str  # "group.method"
    pool: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclasses.dataclass
class Timeline:
    """A full schedule plus per-pool utilisation accounting."""

    events: List[TimelineEvent]

    @property
    def makespan(self) -> float:
        return max((e.end for e in self.events), default=0.0)

    def pools(self) -> List[str]:
        return sorted({e.pool for e in self.events})

    def events_on(self, pool: str) -> List[TimelineEvent]:
        return [e for e in self.events if e.pool == pool]

    def busy_time(self, pool: str) -> float:
        return sum(e.duration for e in self.events_on(pool))

    def idle_fraction(
        self, pool: str, within: Optional[Tuple[float, float]] = None
    ) -> float:
        """Fraction of a window this pool spends idle (Figure 3).

        Args:
            within: ``(start, end)`` window to account against, consistent
                with :meth:`busy_during`.  Defaults to the whole makespan —
                but note that charges a pool whose work ends early with idle
                time for the tail of the run; pass the window of interest
                (e.g. :meth:`active_window`) to scope the accounting.
        """
        start, end = within if within is not None else (0.0, self.makespan)
        span = end - start
        if span <= 0:
            return 0.0
        return 1.0 - self.busy_during(pool, start, end) / span

    def active_window(self, pool: str) -> Tuple[float, float]:
        """``(first event start, last event end)`` of a pool; (0, 0) if none."""
        events = self.events_on(pool)
        if not events:
            return (0.0, 0.0)
        return (min(e.start for e in events), max(e.end for e in events))

    def busy_during(self, pool: str, start: float, end: float) -> float:
        """Busy time of ``pool`` within the window ``[start, end)``."""
        total = 0.0
        for e in self.events_on(pool):
            total += max(0.0, min(e.end, end) - max(e.start, start))
        return total

    def render_ascii(self, width: int = 72, max_legend: int = 48) -> str:
        """A Gantt chart like the execution drawings of Table 1/Figure 3.

        Each pool row reports idle both over the full makespan and within
        the pool's own active window (``win``); the legend uses unique
        markers (``A..Z, A1..``) and is capped at ``max_legend`` entries
        with an explicit "... N more" line.
        """
        span = self.makespan
        if span == 0:
            return "(empty timeline)"
        pools = self.pools()
        label_width = max(len(p) for p in pools) + 1
        lines = [
            f"{'pool'.ljust(label_width)}|{'time -> (makespan %.2f)' % span}"
        ]
        for pool in pools:
            row = [" "] * width
            for index, event in enumerate(self.events_on(pool)):
                lo = int(event.start / span * (width - 1))
                hi = max(lo + 1, int(event.end / span * (width - 1)))
                marker = _marker(index)
                # write as much of the marker as fits this event's cells so
                # wide events show their full (unambiguous) label
                for offset, x in enumerate(range(lo, min(hi, width))):
                    row[x] = marker[offset] if offset < len(marker) else marker[0]
            idle = (
                f" idle={self.idle_fraction(pool) * 100:.0f}%"
                f" (win {self.idle_fraction(pool, self.active_window(pool)) * 100:.0f}%)"
            )
            lines.append(f"{pool.ljust(label_width)}|{''.join(row)}{idle}")
        entries = [
            f"  {pool}/{_marker(index)}: {event.name}"
            for pool in pools
            for index, event in enumerate(self.events_on(pool))
        ]
        legend = entries[:max_legend]
        if len(entries) > max_legend:
            legend.append(f"  ... {len(entries) - max_legend} more event(s)")
        return "\n".join(lines + ["legend:"] + legend)


def build_timeline(
    controller: SingleController,
    duration_fn: Optional[DurationFn] = None,
    trace: Optional[Sequence[ExecutionRecord]] = None,
    metrics=None,
) -> Timeline:
    """Schedule the controller's trace under asynchronous dataflow semantics.

    Args:
        duration_fn: Maps a trace record to simulated seconds; defaults to
            the coarse per-method table.  Plugging in the :mod:`repro.perf`
            latency models gives placement-faithful timelines.
        trace: Override the trace (e.g. one iteration's slice).
        metrics: Registry receiving the ``repro_timeline_fallback_total``
            counter; defaults to the controller's own registry.

    Methods missing from the default duration table are charged
    ``FALLBACK_DURATION`` — never silently: a one-time warning names them,
    and each occurrence increments a per-method metrics counter.
    """
    records = list(trace if trace is not None else controller.trace)
    if metrics is None:
        metrics = getattr(controller, "metrics", None)
    fallback_counts: Dict[str, int] = {}

    def default_duration(record: ExecutionRecord) -> float:
        if record.method not in DEFAULT_DURATIONS:
            fallback_counts[record.method] = (
                fallback_counts.get(record.method, 0) + 1
            )
        return DEFAULT_DURATIONS.get(record.method, FALLBACK_DURATION)

    durations = duration_fn or default_duration
    pool_free: Dict[str, float] = {}
    end_by_seq: Dict[int, float] = {}
    events: List[TimelineEvent] = []
    for record in records:
        ready = max(
            (end_by_seq.get(d, 0.0) for d in record.deps), default=0.0
        )
        start = max(ready, pool_free.get(record.pool, 0.0))
        end = start + durations(record)
        pool_free[record.pool] = end
        end_by_seq[record.seq] = end
        events.append(
            TimelineEvent(
                seq=record.seq,
                name=f"{record.group}.{record.method}",
                pool=record.pool,
                start=start,
                end=end,
            )
        )
    if fallback_counts:
        if metrics is not None:
            for method, count in sorted(fallback_counts.items()):
                metrics.counter(
                    "repro_timeline_fallback_total",
                    "Trace records charged FALLBACK_DURATION (no duration model)",
                    method=method,
                ).inc(count)
        unseen = sorted(m for m in fallback_counts if m not in _FALLBACK_WARNED)
        if unseen:
            _FALLBACK_WARNED.update(unseen)
            warnings.warn(
                f"build_timeline has no duration model for method(s) "
                f"{unseen}; each was charged the flat "
                f"FALLBACK_DURATION={FALLBACK_DURATION}s — timings involving "
                "them are fabricated, not modelled",
                stacklevel=2,
            )
    return Timeline(events=events)
