"""Simulated-time execution timelines from a controller trace (Figure 3).

The single controller records every remote call with its dataflow
dependencies (via future provenance).  This module replays that trace under
the paper's asynchronous-execution semantics (§4.1): a call starts as soon
as (a) its input futures' producers have finished and (b) its pool is free —
models on disjoint pools overlap, colocated models time-share.

The result is the per-pool Gantt chart of Figure 3, with the idle-time
accounting behind the paper's placement observations ("actor and critic ...
incurring 1/3 of their GPU time being idle, during other RLHF stages").
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

from repro.single_controller.controller import ExecutionRecord, SingleController

#: Default duration (simulated seconds) per call kind; a crude stand-in used
#: when no duration function is supplied.  Generation dominates an RLHF
#: iteration (§2.3), updates cost forward+backward, scoring one forward.
DEFAULT_DURATIONS = {
    "generate_sequences": 6.0,
    "update_actor": 3.0,
    "update_critic": 3.0,
    "compute_values": 1.0,
    "compute_ref_log_prob": 1.0,
    "compute_reward": 1.0,
    "compute_cost": 1.0,
    "compute_log_prob": 1.0,
    "compute_loss": 1.0,
}
FALLBACK_DURATION = 1.0

DurationFn = Callable[[ExecutionRecord], float]


@dataclasses.dataclass(frozen=True)
class TimelineEvent:
    """One scheduled call."""

    seq: int
    name: str  # "group.method"
    pool: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclasses.dataclass
class Timeline:
    """A full schedule plus per-pool utilisation accounting."""

    events: List[TimelineEvent]

    @property
    def makespan(self) -> float:
        return max((e.end for e in self.events), default=0.0)

    def pools(self) -> List[str]:
        return sorted({e.pool for e in self.events})

    def events_on(self, pool: str) -> List[TimelineEvent]:
        return [e for e in self.events if e.pool == pool]

    def busy_time(self, pool: str) -> float:
        return sum(e.duration for e in self.events_on(pool))

    def idle_fraction(self, pool: str) -> float:
        """Fraction of the makespan this pool spends idle (Figure 3)."""
        span = self.makespan
        if span == 0:
            return 0.0
        return 1.0 - self.busy_time(pool) / span

    def busy_during(self, pool: str, start: float, end: float) -> float:
        """Busy time of ``pool`` within the window ``[start, end)``."""
        total = 0.0
        for e in self.events_on(pool):
            total += max(0.0, min(e.end, end) - max(e.start, start))
        return total

    def render_ascii(self, width: int = 72) -> str:
        """A Gantt chart like the execution drawings of Table 1/Figure 3."""
        span = self.makespan
        if span == 0:
            return "(empty timeline)"
        pools = self.pools()
        label_width = max(len(p) for p in pools) + 1
        lines = [
            f"{'pool'.ljust(label_width)}|{'time -> (makespan %.2f)' % span}"
        ]
        for pool in pools:
            row = [" "] * width
            for index, event in enumerate(self.events_on(pool)):
                lo = int(event.start / span * (width - 1))
                hi = max(lo + 1, int(event.end / span * (width - 1)))
                marker = chr(ord("A") + index % 26)
                for x in range(lo, min(hi, width)):
                    row[x] = marker
            idle = f" idle={self.idle_fraction(pool) * 100:.0f}%"
            lines.append(f"{pool.ljust(label_width)}|{''.join(row)}{idle}")
        legend = []
        for pool in pools:
            for index, event in enumerate(self.events_on(pool)):
                marker = chr(ord("A") + index % 26)
                legend.append(f"  {pool}/{marker}: {event.name}")
        return "\n".join(lines + ["legend:"] + legend)


def build_timeline(
    controller: SingleController,
    duration_fn: Optional[DurationFn] = None,
    trace: Optional[Sequence[ExecutionRecord]] = None,
) -> Timeline:
    """Schedule the controller's trace under asynchronous dataflow semantics.

    Args:
        duration_fn: Maps a trace record to simulated seconds; defaults to
            the coarse per-method table.  Plugging in the :mod:`repro.perf`
            latency models gives placement-faithful timelines.
        trace: Override the trace (e.g. one iteration's slice).
    """
    records = list(trace if trace is not None else controller.trace)

    def default_duration(record: ExecutionRecord) -> float:
        return DEFAULT_DURATIONS.get(record.method, FALLBACK_DURATION)

    durations = duration_fn or default_duration
    pool_free: Dict[str, float] = {}
    end_by_seq: Dict[int, float] = {}
    events: List[TimelineEvent] = []
    for record in records:
        ready = max(
            (end_by_seq.get(d, 0.0) for d in record.deps), default=0.0
        )
        start = max(ready, pool_free.get(record.pool, 0.0))
        end = start + durations(record)
        pool_free[record.pool] = end
        end_by_seq[record.seq] = end
        events.append(
            TimelineEvent(
                seq=record.seq,
                name=f"{record.group}.{record.method}",
                pool=record.pool,
                start=start,
                end=end,
            )
        )
    return Timeline(events=events)
