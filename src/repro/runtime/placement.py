"""Placement plans: which models share which GPU pools (§2.3, §8.3).

A :class:`PlacementPlan` names a set of resource pools (with GPU counts) and
assigns each model a pool plus its parallelism strategy.  The canonical plans
of the paper's evaluation — *colocate* (DeepSpeed-Chat), *standalone*
(OpenRLHF), *split* (NeMo-Aligner) — are provided as constructors, and the
auto-mapping algorithm (§6) emits the same structure.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.config import GenParallelConfig, ParallelConfig


@dataclasses.dataclass
class ModelAssignment:
    """One model's pool and parallelism choice."""

    pool: str
    parallel: ParallelConfig
    gen_parallel: Optional[GenParallelConfig] = None

    def __post_init__(self) -> None:
        if self.gen_parallel is not None:
            mp = self.parallel.model_parallel_size
            gen_mp = self.gen_parallel.model_parallel_size
            if gen_mp * self.gen_parallel.micro_dp != mp:
                raise ValueError(
                    f"generation groups {self.gen_parallel} inconsistent with "
                    f"training {self.parallel}"
                )


@dataclasses.dataclass
class PlacementPlan:
    """Pools plus per-model assignments for one RLHF dataflow."""

    pools: Dict[str, int]
    assignments: Dict[str, ModelAssignment]

    def __post_init__(self) -> None:
        for model, assignment in self.assignments.items():
            if assignment.pool not in self.pools:
                raise ValueError(
                    f"model {model!r} assigned to unknown pool "
                    f"{assignment.pool!r}"
                )
            n = self.pools[assignment.pool]
            if assignment.parallel.world_size != n:
                raise ValueError(
                    f"model {model!r}: parallel config {assignment.parallel} "
                    f"needs {assignment.parallel.world_size} GPUs but pool "
                    f"{assignment.pool!r} has {n}"
                )

    @property
    def total_gpus(self) -> int:
        return sum(self.pools.values())

    def models(self) -> List[str]:
        return list(self.assignments)

    def colocated_models(self, pool: str) -> List[str]:
        return [m for m, a in self.assignments.items() if a.pool == pool]

    def pool_of(self, model: str) -> str:
        return self.assignments[model].pool

    # -- canonical plans of §8.3 -----------------------------------------------------

    @classmethod
    def colocate(
        cls,
        models: List[str],
        n_gpus: int,
        parallel: Dict[str, ParallelConfig],
        gen_parallel: Optional[GenParallelConfig] = None,
    ) -> "PlacementPlan":
        """All models time-share one pool (DeepSpeed-Chat's placement)."""
        assignments = {
            m: ModelAssignment(
                pool="shared",
                parallel=parallel[m],
                gen_parallel=gen_parallel if m == "actor" else None,
            )
            for m in models
        }
        return cls(pools={"shared": n_gpus}, assignments=assignments)

    @classmethod
    def standalone(
        cls,
        gpus_per_model: Dict[str, int],
        parallel: Dict[str, ParallelConfig],
        gen_parallel: Optional[GenParallelConfig] = None,
    ) -> "PlacementPlan":
        """Every model on its own devices (OpenRLHF's placement)."""
        pools = {f"pool-{m}": n for m, n in gpus_per_model.items()}
        assignments = {
            m: ModelAssignment(
                pool=f"pool-{m}",
                parallel=parallel[m],
                gen_parallel=gen_parallel if m == "actor" else None,
            )
            for m in gpus_per_model
        }
        return cls(pools=pools, assignments=assignments)

    @classmethod
    def split(
        cls,
        actor_side: List[str],
        critic_side: List[str],
        actor_gpus: int,
        critic_gpus: int,
        parallel: Dict[str, ParallelConfig],
        gen_parallel: Optional[GenParallelConfig] = None,
    ) -> "PlacementPlan":
        """NeMo-Aligner's split: actor+reference vs critic+reward pools."""
        assignments: Dict[str, ModelAssignment] = {}
        for m in actor_side:
            assignments[m] = ModelAssignment(
                pool="actor_side",
                parallel=parallel[m],
                gen_parallel=gen_parallel if m == "actor" else None,
            )
        for m in critic_side:
            assignments[m] = ModelAssignment(pool="critic_side", parallel=parallel[m])
        return cls(
            pools={"actor_side": actor_gpus, "critic_side": critic_gpus},
            assignments=assignments,
        )
