"""Automatic failure recovery for functional RLHF runs (§9, beyond the happy path).

:func:`train_with_recovery` wraps a trainer loop with the full
fail-detect-recover cycle the single-controller model makes easy:

1. **Detect** — a remote call against a pool with a dead device (or with an
   exhausted retry budget) raises a typed
   :class:`~repro.faults.WorkerLostError` from the dispatch gate.
2. **Tear down** — the failed job's pools are released back to the cluster
   (:meth:`SingleController.release_pools`); dead devices stay dead.
3. **Re-place** — the caller's build function runs again *on the surviving
   cluster*, so pool allocation re-runs placement on the shrunken world.
4. **Restore** — the last atomic checkpoint is loaded (workers, optimizer,
   RNG, trainer/dataloader state) and lost iterations are re-run; because
   worker RNG streams are keyed by local rank, the recovered trajectory is
   bit-exact against an uninterrupted run.

Every recovery is accounted on the simulated clock (lost work since the
last checkpoint, re-init, restore) and surfaced in a
:class:`RecoveryReport`, so MTTR and goodput-vs-checkpoint-interval can be
studied with :mod:`repro.perf.recovery`.
"""

from __future__ import annotations

import dataclasses
import pathlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.data.dataset import PromptDataset
from repro.faults.errors import WorkerLostError
from repro.faults.injector import FaultInjector
from repro.faults.policy import RetryPolicy
from repro.runtime.builder import RlhfSystem

#: Builds (or rebuilds) the RLHF system; receives the surviving cluster on
#: recovery, ``None`` on the first build.
BuildFn = Callable[[Optional[Any]], RlhfSystem]


@dataclasses.dataclass
class RecoveryCostModel:
    """Simulated-time costs of the recovery path.

    Attributes:
        reinit_time: Seconds to respawn worker groups and rebuild process
            groups on the surviving devices.
        restore_bandwidth: Bytes/s at which checkpoint state is read back.
        checkpoint_bandwidth: Bytes/s at which checkpoint state is written.
    """

    reinit_time: float = 2.0
    restore_bandwidth: float = 1e9
    checkpoint_bandwidth: float = 2e9

    def restore_time(self, checkpoint_bytes: int) -> float:
        return checkpoint_bytes / self.restore_bandwidth

    def save_time(self, checkpoint_bytes: int) -> float:
        return checkpoint_bytes / self.checkpoint_bandwidth


@dataclasses.dataclass(frozen=True)
class RecoveryEvent:
    """One detected failure and its recovery, in simulated time."""

    failed_iteration: int  # iteration (0-based) in flight when the fault hit
    resumed_iteration: int  # last checkpointed iteration we rolled back to
    lost_iterations: int  # completed iterations whose work was lost
    dead_ranks: Tuple[int, ...]
    pool: str
    cause: str
    detected_at: float  # simulated clock at detection
    restore_time: float
    reinit_time: float

    @property
    def downtime(self) -> float:
        """Re-init plus restore: the simulated repair time of this failure."""
        return self.restore_time + self.reinit_time


@dataclasses.dataclass
class RecoveryReport:
    """Aggregate recovery-cost accounting of one run."""

    events: List[RecoveryEvent] = dataclasses.field(default_factory=list)
    checkpoints_saved: int = 0
    checkpoint_time: float = 0.0  # total simulated seconds spent saving
    total_time: float = 0.0  # simulated clock at the end of the run

    @property
    def n_failures(self) -> int:
        return len(self.events)

    @property
    def total_lost_iterations(self) -> int:
        return sum(e.lost_iterations for e in self.events)

    @property
    def total_downtime(self) -> float:
        return sum(e.downtime for e in self.events)

    @property
    def mttr(self) -> float:
        """Mean simulated time to repair a failure (0 when none occurred)."""
        if not self.events:
            return 0.0
        return self.total_downtime / len(self.events)

    def summary_lines(self) -> List[str]:
        lines = [
            f"recovery: {self.n_failures} failure(s), "
            f"{self.total_lost_iterations} iteration(s) of work lost"
        ]
        for e in self.events:
            ranks = f"ranks {list(e.dead_ranks)}" if e.dead_ranks else "no dead ranks"
            lines.append(
                f"  at iter {e.failed_iteration}: {e.cause} ({ranks}, pool "
                f"{e.pool!r}) -> rolled back to iter {e.resumed_iteration}, "
                f"repair {e.downtime:.2f}s (restore {e.restore_time:.2f}s "
                f"+ reinit {e.reinit_time:.2f}s)"
            )
        lines.append(
            f"  checkpoints: {self.checkpoints_saved} saved, "
            f"{self.checkpoint_time:.2f}s simulated write time"
        )
        if self.events:
            lines.append(f"  MTTR {self.mttr:.2f}s over {self.n_failures} repair(s)")
        return lines


def _checkpoint_nbytes(directory: pathlib.Path) -> int:
    return sum(f.stat().st_size for f in directory.glob("*") if f.is_file())


def restore_system(
    system: RlhfSystem,
    checkpoint_dir: str,
    cost_model: Optional[RecoveryCostModel] = None,
    allow_resize: bool = False,
) -> Tuple[int, float]:
    """Load the atomic checkpoint into a (possibly resized) rebuilt system.

    The one restore path shared by :func:`train_with_recovery` and the fleet
    scheduler: loads worker state (``allow_resize=True`` permits a different
    DP width — see :meth:`SingleController.load_checkpoint`), charges the
    restore to the simulated clock, and re-hydrates the trainer's RNG and
    iteration counter from the manifest.

    Returns:
        ``(resumed_iteration, restore_time)``.
    """
    cost = cost_model or RecoveryCostModel()
    root = pathlib.Path(checkpoint_dir)
    manifest = system.controller.load_checkpoint(root, allow_resize=allow_resize)
    src = root if root.is_dir() else root.parent / f".{root.name}.replaced"
    restore_time = cost.restore_time(_checkpoint_nbytes(src))
    system.controller.clock.advance(restore_time)
    extra = manifest.get("extra") or {}
    if "trainer" in extra:
        system.trainer.load_state_dict(extra["trainer"])
    return int(extra.get("iteration", 0)), restore_time


def train_with_recovery(
    build_fn: BuildFn,
    dataset: PromptDataset,
    n_iterations: int,
    batch_size: int,
    checkpoint_dir: str,
    checkpoint_every: int = 1,
    injector: Optional[FaultInjector] = None,
    retry_policy: Optional[RetryPolicy] = None,
    cost_model: Optional[RecoveryCostModel] = None,
    max_recoveries: int = 8,
) -> Tuple[RlhfSystem, List[Dict[str, Any]], RecoveryReport]:
    """Train for ``n_iterations``, surviving injected permanent failures.

    Args:
        build_fn: ``build_fn(cluster)`` returning a fresh
            :class:`RlhfSystem`; called with ``None`` initially and with the
            surviving :class:`~repro.cluster.SimCluster` on every rebuild.
            It must construct the system deterministically (same seeds).
        checkpoint_every: Save an atomic checkpoint after every N completed
            iterations (the goodput/checkpoint-interval trade-off of
            :mod:`repro.perf.recovery`).
        injector: Optional fault delivery; re-bound to each rebuilt
            controller so one plan spans the whole run.
        retry_policy: Override the controller's transient-fault policy.
        max_recoveries: Abort (re-raise ``WorkerLostError``) after this many
            recoveries — e.g. when no feasible placement survives.

    Returns:
        ``(system, history, report)`` — the final system, per-iteration
        metrics (identical to an uninterrupted run), and the recovery-cost
        accounting.
    """
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    cost = cost_model or RecoveryCostModel()
    root = pathlib.Path(checkpoint_dir)
    report = RecoveryReport()
    #: Observability record of the whole run: captured from the first build
    #: and re-attached to every rebuilt controller, so one tracer/registry
    #: spans the faulted run, the recovery phases, and the resumed run.
    obs: Dict[str, Any] = {}

    def _wire(system: RlhfSystem) -> RlhfSystem:
        if retry_policy is not None:
            system.controller.retry_policy = retry_policy
        if injector is not None:
            system.controller.attach_fault_injector(injector)
        if not obs:
            obs["tracer"] = system.controller.tracer
            obs["metrics"] = system.controller.metrics
        else:
            system.controller.attach_observability(obs["tracer"], obs["metrics"])
        return system

    def _save(system: RlhfSystem, iteration: int) -> None:
        controller = system.controller
        with controller.tracer.span(
            "checkpoint.save", category="checkpoint", iteration=iteration
        ) as span:
            controller.save_checkpoint(
                root,
                extra={
                    "iteration": iteration,
                    "trainer": system.trainer.state_dict(),
                },
            )
            save_time = cost.save_time(_checkpoint_nbytes(root))
            controller.clock.advance(save_time)
            span.attrs["save_time"] = save_time
        report.checkpoints_saved += 1
        report.checkpoint_time += save_time

    def _stream_at(iteration: int):
        batches = dataset.iter_batches(batch_size, epochs=10**6)
        for _ in range(iteration):
            next(batches)
        return batches

    system = _wire(build_fn(None))
    cluster = system.controller.cluster
    _save(system, 0)  # recovery target before the first periodic save exists
    history: List[Dict[str, Any]] = []
    batches = _stream_at(0)
    it = 0
    recoveries = 0
    while it < n_iterations:
        prompts = next(batches)
        try:
            metrics = system.trainer.run_step(prompts)
        except WorkerLostError as err:
            recoveries += 1
            if recoveries > max_recoveries:
                raise
            tracer = obs["tracer"]
            run_metrics = obs["metrics"]
            detected = system.controller.clock.now
            recovery_span = tracer.begin(
                f"recovery[{recoveries - 1}]",
                category="recovery",
                pool=err.pool,
                ranks=tuple(err.dead_ranks),
                cause=err.cause or "worker lost",
                failed_iteration=it,
            )
            # tear down the failed job; survivors return to the cluster
            with tracer.span("recovery.teardown", category="recovery"):
                system.controller.release_pools()
            # re-place on the shrunken cluster and restore the checkpoint.
            # _wire re-points the shared tracer at the rebuilt controller's
            # clock, which restarts at 0 — advance it back to the detection
            # time before opening any further spans.
            system = _wire(build_fn(cluster))
            system.controller.clock.advance(detected)
            with tracer.span("recovery.rebuild", category="recovery"):
                system.controller.clock.advance(cost.reinit_time)
            with tracer.span("recovery.restore", category="recovery") as restore_span:
                resumed, restore_time = restore_system(system, root, cost)
                restore_span.attrs["restore_time"] = restore_time
            tracer.end(
                recovery_span,
                resumed_iteration=resumed,
                lost_iterations=it - resumed,
            )
            run_metrics.counter(
                "repro_recoveries_total", "Completed failure recoveries"
            ).inc()
            run_metrics.counter(
                "repro_lost_iterations_total",
                "Completed iterations whose work was lost to failures",
            ).inc(it - resumed)
            report.events.append(
                RecoveryEvent(
                    failed_iteration=it,
                    resumed_iteration=resumed,
                    lost_iterations=it - resumed,
                    dead_ranks=err.dead_ranks,
                    pool=err.pool,
                    cause=err.cause or "worker lost",
                    detected_at=detected,
                    restore_time=restore_time,
                    reinit_time=cost.reinit_time,
                )
            )
            history = history[:resumed]
            batches = _stream_at(resumed)
            it = resumed
            continue
        history.append(metrics)
        it += 1
        if it % checkpoint_every == 0:
            _save(system, it)
    report.total_time = system.controller.clock.now
    return system, history, report
