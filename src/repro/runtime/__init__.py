"""Runtime glue: placement plans and end-to-end RLHF system construction."""

from repro.runtime.placement import ModelAssignment, PlacementPlan
from repro.runtime.builder import RlhfSystem, build_rlhf_system
from repro.runtime.timeline import Timeline, TimelineEvent, build_timeline
from repro.runtime.report import system_report

__all__ = [
    "ModelAssignment",
    "PlacementPlan",
    "RlhfSystem",
    "Timeline",
    "TimelineEvent",
    "build_rlhf_system",
    "build_timeline",
    "system_report",
]
