"""Runtime glue: placement plans and end-to-end RLHF system construction."""

from repro.runtime.placement import ModelAssignment, PlacementPlan
from repro.runtime.builder import RlhfSystem, build_rlhf_system
from repro.runtime.timeline import Timeline, TimelineEvent, build_timeline
from repro.runtime.report import (
    observability_summary,
    recovery_summary,
    system_report,
    system_report_dict,
)
from repro.runtime.recovery import (
    RecoveryCostModel,
    RecoveryEvent,
    RecoveryReport,
    restore_system,
    train_with_recovery,
)

__all__ = [
    "ModelAssignment",
    "PlacementPlan",
    "RecoveryCostModel",
    "RecoveryEvent",
    "RecoveryReport",
    "RlhfSystem",
    "Timeline",
    "TimelineEvent",
    "build_rlhf_system",
    "build_timeline",
    "observability_summary",
    "recovery_summary",
    "restore_system",
    "system_report",
    "system_report_dict",
    "train_with_recovery",
]
