"""Run reports: summarise a functional RLHF system after training.

``system_report`` renders what an operator would want on one screen: the
model placement and parallelism, per-device memory peaks from the ledgers,
communication volume from the traffic meter, the execution-pattern timeline,
and the training metrics trend.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from repro.observability.collect import collect_system_metrics
from repro.runtime.builder import RlhfSystem
from repro.runtime.timeline import build_timeline
from repro.serialization import json_safe


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024:
            return f"{n:.1f} {unit}"
        n /= 1024
    return f"{n:.1f} TB"


def placement_summary(system: RlhfSystem) -> List[str]:
    lines = ["placement:"]
    for role, group in system.groups.items():
        cfg = group.train_topology.config
        gen = ""
        if group.gen_topology is not None:
            g = group.gen_topology.config
            gen = f", generation {g} ({group.gen_topology.mode.value})"
        n_params = getattr(group.workers[0], "model_config", None)
        size = ""
        if n_params is not None:
            from repro.models.tinylm import TinyLM

            size = f", {TinyLM(n_params).n_params():,} params"
        lines.append(
            f"  {role:9s} pool={group.resource_pool.name} "
            f"({group.world_size} GPUs), 3D {cfg}{gen}{size}"
        )
    return lines


def memory_summary(system: RlhfSystem) -> List[str]:
    lines = ["device memory (peak used):"]
    seen = set()
    for group in system.groups.values():
        for worker in group.workers:
            device = worker.ctx.device
            if device.global_rank in seen:
                continue
            seen.add(device.global_rank)
            lines.append(
                f"  GPU {device.global_rank}: peak "
                f"{_fmt_bytes(device.memory.peak_used)}, resident "
                f"{_fmt_bytes(device.memory.used)}"
            )
    return lines


def traffic_summary(system: RlhfSystem, top: int = 6) -> List[str]:
    meter = system.controller.meter
    by_op: Dict[str, int] = {}
    for (group, op), volume in meter.snapshot().items():
        key = f"{group.split('/')[0]}:{op}"
        by_op[key] = by_op.get(key, 0) + volume
    lines = [f"communication ({_fmt_bytes(meter.total_bytes())} total):"]
    for key, volume in sorted(by_op.items(), key=lambda kv: -kv[1])[:top]:
        lines.append(f"  {key:40s} {_fmt_bytes(volume)}")
    return lines


def dataflow_summary(system: RlhfSystem) -> List[str]:
    counts: Dict[str, int] = {}
    for record in system.controller.trace:
        name = f"{record.group}.{record.method}"
        counts[name] = counts.get(name, 0) + 1
    lines = ["dataflow calls:"]
    for name, count in sorted(counts.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {name:35s} x{count}")
    return lines


def metrics_summary(system: RlhfSystem) -> List[str]:
    history = system.trainer.history
    if not history:
        return ["metrics: (no training iterations recorded)"]
    first = history[0].get("score_mean")
    last = history[-1].get("score_mean")
    lines = [f"metrics over {len(history)} iterations:"]
    if first is not None and last is not None:
        lines.append(f"  score_mean {first:+.3f} -> {last:+.3f}")
    for key in sorted(history[-1]):
        value = history[-1][key]
        # np.float64 subclasses float but np.float32 does not: accept both
        # so worker metrics never silently drop out of the report
        if key != "score_mean" and isinstance(value, (float, np.floating)):
            lines.append(f"  {key} = {float(value):+.4f} (last)")
    return lines


def recovery_summary(report) -> List[str]:
    """Recovery-cost lines from a :class:`~repro.runtime.RecoveryReport`."""
    return report.summary_lines()


def observability_summary(system: RlhfSystem) -> List[str]:
    """Per-iteration latency table from the controller's iteration spans."""
    controller = system.controller
    tracer = getattr(controller, "tracer", None)
    if tracer is None or not tracer.spans:
        return ["observability: (no spans recorded)"]
    counts = ", ".join(
        f"{category}={count}"
        for category, count in tracer.counts_by_category().items()
    )
    lines = [f"observability: {len(tracer.spans)} spans ({counts})"]
    iterations = [s for s in tracer.by_category("iteration") if s.finished]
    if iterations:
        lines.append("  iteration  algo      start      duration")
        for span in iterations:
            lines.append(
                f"  {span.attrs.get('iteration', '?'):>9}  "
                f"{str(span.attrs.get('algo', '?')):8s}  "
                f"{span.start:9.2f}  {span.duration:9.2f}s"
            )
    metrics = getattr(controller, "metrics", None)
    if metrics is not None:
        retries = metrics.total("repro_retries_total")
        losses = metrics.total("repro_worker_losses_total")
        tokens = metrics.total("repro_tokens_generated_total")
        lines.append(
            f"  dispatches={int(metrics.total('repro_dispatch_calls_total'))} "
            f"tokens={int(tokens)} retries={int(retries)} "
            f"worker_losses={int(losses)}"
        )
    return lines


def system_report_dict(
    system: RlhfSystem,
    recovery=None,
    analysis=None,
    model_check=None,
    shapes=None,
) -> Dict[str, Any]:
    """A machine-readable run report, sanitized for ``json.dumps``.

    Everything is routed through the same sanitizer as checkpoint
    manifests, so numpy scalars in trainer history or span attributes can
    never leak into the JSON output.

    Args:
        analysis: Optional :class:`~repro.analysis.AnalysisReport` (e.g. the
            TraceAuditor's post-run audit); embedded under ``"analysis"``.
        model_check: Optional iterable of
            :class:`~repro.analysis.ModelCheckResult` (the MC6xx bounded
            protocol exploration); coverage and any counterexample
            schedules are embedded under ``"model_check"``.
        shapes: Optional :class:`~repro.analysis.AnalysisReport` from the
            SF7xx runtime shape cross-validation
            (:func:`~repro.analysis.shape_cross_validate`); embedded under
            ``"shapes"``.
    """
    controller = system.controller
    collect_system_metrics(controller)
    doc: Dict[str, Any] = {
        "placement": {
            role: {
                "pool": group.resource_pool.name,
                "world_size": group.world_size,
                "parallel": str(group.train_topology.config),
            }
            for role, group in system.groups.items()
        },
        "history": system.trainer.history,
        "trace_calls": len(controller.trace),
        "comm_bytes_total": controller.meter.total_bytes(),
        "spans": [s.to_dict() for s in controller.tracer.spans],
        "metrics": controller.metrics.as_dict(),
    }
    if analysis is not None:
        doc["analysis"] = analysis.to_dict()
    if shapes is not None:
        doc["shapes"] = shapes.to_dict()
    if model_check is not None:
        import dataclasses

        results = list(model_check)
        doc["model_check"] = {
            "models": [
                {
                    "model": result.model,
                    "states": result.states,
                    "transitions": result.transitions,
                    "truncated": result.truncated,
                    "counterexamples": [
                        dataclasses.asdict(ce)
                        for ce in result.counterexamples
                    ],
                }
                for result in results
            ],
            "states_total": sum(r.states for r in results),
            "ok": all(r.ok for r in results),
        }
    if recovery is not None:
        doc["recovery"] = {
            "n_failures": recovery.n_failures,
            "lost_iterations": recovery.total_lost_iterations,
            "total_downtime": recovery.total_downtime,
            "mttr": recovery.mttr,
            "checkpoints_saved": recovery.checkpoints_saved,
            "checkpoint_time": recovery.checkpoint_time,
            "total_time": recovery.total_time,
        }
    return json_safe(doc, "report")


def system_report(
    system: RlhfSystem,
    include_timeline: bool = True,
    timeline_width: int = 60,
    recovery=None,
) -> str:
    """A one-screen report of a functional RLHF run.

    Args:
        recovery: Optional :class:`~repro.runtime.RecoveryReport` from
            :func:`~repro.runtime.train_with_recovery`; adds a fault-
            tolerance section with lost work, restore time, and MTTR.
    """
    sections = [
        ["=== RLHF system report ==="],
        placement_summary(system),
        dataflow_summary(system),
        traffic_summary(system),
        memory_summary(system),
        metrics_summary(system),
        observability_summary(system),
    ]
    if recovery is not None:
        sections.append(recovery_summary(recovery))
    if include_timeline and system.controller.trace:
        timeline = build_timeline(system.controller)
        sections.append(
            ["execution timeline:"]
            + build_timeline(system.controller)
            .render_ascii(timeline_width)
            .splitlines()[: 3 + len(timeline.pools())]
        )
    return "\n".join("\n".join(section) for section in sections)
