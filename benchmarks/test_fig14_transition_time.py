"""Figure 14: actor train->generation transition time across model scales.

Paper shapes: HybridFlow's transition is dramatically cheaper than
DeepSpeed-Chat's cluster-wide reshard and OpenRLHF's cross-copy weight sync
(55.2% average / up to 89.1% reduction at 70B), and it stays flat as the
cluster grows while the baselines' costs rise.
"""

from benchmarks.common import emit, format_table
from repro.config import (
    MODEL_SPECS,
    ClusterSpec,
    GenParallelConfig,
    ParallelConfig,
)
from repro.hybrid_engine.overhead import EngineKind
from repro.perf.transition import transition_time, weight_sync_time

#: (model, machines, training p-t-d, generation tp) — representative
#: HybridFlow configurations at each scale.
SCENARIOS = [
    ("llama-7b", 1, ParallelConfig(1, 4, 2), 2),
    ("llama-13b", 2, ParallelConfig(1, 8, 2), 4),
    ("llama-34b", 4, ParallelConfig(2, 8, 2), 4),
    ("llama-70b", 8, ParallelConfig(4, 8, 2), 8),
]


def run_transitions():
    rows = []
    for model, n_machines, train, gen_tp in SCENARIOS:
        spec = MODEL_SPECS[model]
        cluster = ClusterSpec(n_machines=n_machines)
        gen = GenParallelConfig.derive(train, 1, gen_tp)
        hybridflow = transition_time(
            EngineKind.HYBRIDFLOW, spec, cluster, train, gen
        )
        hybridflow_v = transition_time(
            EngineKind.HYBRIDFLOW_V, spec, cluster, train, gen
        )
        n = cluster.n_gpus
        ds_chat = transition_time(
            EngineKind.DS_CHAT,
            spec,
            cluster,
            ParallelConfig(1, 1, n),
            GenParallelConfig(1, 1, 1),
        )
        openrlhf = weight_sync_time(spec, cluster, n // 4)
        rows.append(
            {
                "model": model,
                "gpus": n,
                "HybridFlow": hybridflow,
                "HybridFlow-V": hybridflow_v,
                "DeepSpeed-Chat": ds_chat,
                "OpenRLHF": openrlhf,
            }
        )
    return rows


def test_fig14_transition_time(benchmark):
    rows = benchmark.pedantic(run_transitions, rounds=1, iterations=1)
    systems = ["HybridFlow", "HybridFlow-V", "DeepSpeed-Chat", "OpenRLHF"]
    emit(
        "fig14_transition_time",
        format_table(
            ["model", "gpus", *systems, "vs worst"],
            [
                [r["model"], r["gpus"]]
                + [r[s] for s in systems]
                + [
                    f"-{(1 - r['HybridFlow'] / max(r[s] for s in systems)) * 100:.1f}%"
                ]
                for r in rows
            ],
            "Figure 14: transition time between training and generation (s)",
        ),
    )

    for r in rows:
        assert r["HybridFlow"] <= r["HybridFlow-V"] <= r["DeepSpeed-Chat"]
        assert r["HybridFlow"] < r["OpenRLHF"]

    # the 70B saving vs the worst baseline approaches the paper's 89.1%
    big = rows[-1]
    worst = max(big[s] for s in systems)
    assert 1 - big["HybridFlow"] / worst > 0.7

    # HybridFlow's transition stays flat as the cluster scales (§8.4:
    # "maintaining consistent overhead across different cluster scales")
    spec = MODEL_SPECS["llama-7b"]
    train_small = ParallelConfig(1, 4, 2)
    train_big = ParallelConfig(1, 4, 32)
    t_small = transition_time(
        EngineKind.HYBRIDFLOW,
        spec,
        ClusterSpec(n_machines=1),
        train_small,
        GenParallelConfig.derive(train_small, 1, 2),
    )
    t_big = transition_time(
        EngineKind.HYBRIDFLOW,
        spec,
        ClusterSpec(n_machines=16),
        train_big,
        GenParallelConfig.derive(train_big, 1, 2),
    )
    assert abs(t_big - t_small) / max(t_small, 1e-9) < 0.1
