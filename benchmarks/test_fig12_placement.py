"""Figure 12: HybridFlow throughput under different model placements (§8.3).

Shapes reproduced: colocation wins on small clusters; the split strategy
overtakes at 96-128 GPUs for 34B models; the Algorithm 1 search always
matches or beats every named strategy.

Known deviation (recorded in EXPERIMENTS.md): the paper's 13B/128-GPU point
is won by the *standalone* placement on the real testbed; our generation
model weighs the actor's GPU share more heavily, so colocate retains the
lead there.
"""


from benchmarks.common import emit, format_table, specs_for, workload
from repro.baselines.common import InfeasibleScenario
from repro.baselines.hybridflow import PLACEMENT_STRATEGIES, estimate_hybridflow
from repro.config import ClusterSpec
from repro.rlhf.core import AlgoType

GRID = {
    "llama-13b": (2, 4, 8, 12, 16),
    "llama-34b": (4, 8, 12, 16),
}


def run_placement_grid():
    wl = workload()
    results = {}
    for model, machine_counts in GRID.items():
        specs = specs_for(AlgoType.PPO, model)
        for n_machines in machine_counts:
            cluster = ClusterSpec(n_machines=n_machines)
            point = {}
            for strategy in PLACEMENT_STRATEGIES:
                try:
                    est = estimate_hybridflow(
                        AlgoType.PPO, specs, cluster, wl, placement=strategy
                    )
                    point[strategy] = est.throughput(wl)
                except (InfeasibleScenario, RuntimeError):
                    point[strategy] = None
            results[(model, cluster.n_gpus)] = point
    return results


def test_fig12_placement_comparison(benchmark):
    results = benchmark.pedantic(run_placement_grid, rounds=1, iterations=1)

    rows = [
        [model, gpus] + [point[s] for s in PLACEMENT_STRATEGIES]
        for (model, gpus), point in sorted(results.items())
    ]
    emit(
        "fig12_placement",
        format_table(
            ["model", "gpus", *PLACEMENT_STRATEGIES],
            rows,
            "Figure 12: throughput under different placements (tokens/sec)",
        ),
    )

    for (model, gpus), point in results.items():
        named = {
            s: v
            for s, v in point.items()
            if s != "hybridflow" and v is not None
        }
        if not named or point["hybridflow"] is None:
            continue
        # Algorithm 1's choice is never worse than any named strategy (§8.3)
        assert point["hybridflow"] >= max(named.values()) * 0.999, (model, gpus)

    # colocate wins on small clusters...
    small = results[("llama-13b", 16)]
    assert small["colocate"] == max(
        v for s, v in small.items() if s != "hybridflow" and v
    )
    # ...and split overtakes colocate for 34B at 128 GPUs (§8.3)
    large = results[("llama-34b", 128)]
    assert large["split"] is not None and large["colocate"] is not None
    assert large["split"] > large["colocate"]

    # placement gaps narrow as the cluster grows (13B: split/colocate ratio)
    ratio_small = (
        results[("llama-13b", 16)]["split"] / results[("llama-13b", 16)]["colocate"]
    )
    ratio_large = (
        results[("llama-13b", 128)]["split"]
        / results[("llama-13b", 128)]["colocate"]
    )
    assert ratio_large > ratio_small
