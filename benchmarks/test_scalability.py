"""§8.2 scalability: strong scaling of HybridFlow with a fixed global batch.

"With increasing GPUs, the strong scaling efficiency of HybridFlow on
various model scales is 66.8% ... Scaling to a large number of GPUs with a
fixed global batch size results in smaller local batch sizes for each
worker, potentially causing GPU underutilization."
"""

from benchmarks.common import emit, format_table, specs_for, workload
from repro.baselines import estimate_hybridflow
from repro.baselines.common import InfeasibleScenario
from repro.config import ClusterSpec
from repro.rlhf.core import AlgoType

SCALES = {
    "llama-7b": (1, 2, 4, 8, 16),
    "llama-13b": (2, 4, 8, 16),
    "llama-70b": (8, 16),
}


def run_scaling():
    wl = workload()
    results = {}
    for model, machine_counts in SCALES.items():
        specs = specs_for(AlgoType.PPO, model)
        series = {}
        for n_machines in machine_counts:
            cluster = ClusterSpec(n_machines=n_machines)
            try:
                est = estimate_hybridflow(AlgoType.PPO, specs, cluster, wl)
                series[cluster.n_gpus] = est.throughput(wl)
            except (InfeasibleScenario, RuntimeError):
                series[cluster.n_gpus] = None
        results[model] = series
    return results


def test_strong_scaling(benchmark):
    results = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    rows = []
    efficiencies = []
    for model, series in results.items():
        points = [(g, t) for g, t in sorted(series.items()) if t]
        base_gpus, base_tput = points[0]
        for gpus, tput in points:
            scale = gpus / base_gpus
            efficiency = tput / base_tput / scale
            rows.append(
                [model, gpus, tput, f"{efficiency * 100:.0f}%"]
            )
            if scale > 1:
                efficiencies.append(efficiency)
    emit(
        "scalability",
        format_table(
            ["model", "gpus", "tokens/sec", "strong-scaling efficiency"],
            rows,
            "Strong scaling with fixed global batch (paper: 66.8% average)",
        ),
    )

    # efficiency is below 100% and degrades with scale, in the paper's band
    avg = sum(efficiencies) / len(efficiencies)
    assert 0.45 < avg < 0.95
    for model, series in results.items():
        points = [(g, t) for g, t in sorted(series.items()) if t]
        if len(points) < 3:
            continue
        base_gpus, base_tput = points[0]
        effs = [
            t / base_tput / (g / base_gpus) for g, t in points
        ]
        # monotone-ish decline: the largest scale is the least efficient
        assert effs[-1] <= max(effs[1:]) + 1e-9
        assert effs[-1] < 1.0
