"""Figure 11: Safe-RLHF throughput (five models: extra cost model + PTX loss).

The additional cost-model inference and the auxiliary pretraining loss make
every system slower than its PPO counterpart at the same point; HybridFlow
keeps winning.
"""

from benchmarks.common import (
    emit,
    run_end_to_end_grid,
    specs_for,
    throughput_table,
    workload,
)
from repro.baselines import estimate_hybridflow
from repro.config import ClusterSpec
from repro.rlhf.core import AlgoType


def test_fig11_safe_rlhf_throughput(benchmark):
    rows = benchmark.pedantic(
        run_end_to_end_grid, args=(AlgoType.SAFE_RLHF,), rounds=1, iterations=1
    )
    emit(
        "fig11_safe_rlhf_throughput",
        throughput_table(rows, "Figure 11: Safe-RLHF throughput (tokens/sec)"),
    )

    for row in rows:
        hf = row["HybridFlow"]
        assert hf, (row["model"], row["gpus"])
        for system in ("DeepSpeed-Chat", "OpenRLHF", "NeMo-Aligner"):
            if row[system]:
                assert hf > row[system], (row["model"], row["gpus"], system)

    # Safe-RLHF is slower than PPO under the same configuration
    cluster = ClusterSpec(n_machines=2)
    wl = workload()
    ppo = estimate_hybridflow(
        AlgoType.PPO, specs_for(AlgoType.PPO, "llama-7b"), cluster, wl
    )
    safe = estimate_hybridflow(
        AlgoType.SAFE_RLHF, specs_for(AlgoType.SAFE_RLHF, "llama-7b"), cluster, wl
    )
    assert safe.throughput(wl) < ppo.throughput(wl)
