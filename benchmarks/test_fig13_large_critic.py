"""Figure 13: placements with a 13B actor/reference and 70B critic/reward.

"Larger critic and reward models are expected to produce better alignment"
(§8.3).  Shapes: colocate leads on smaller clusters; by 96-128 GPUs a
placement separating the big critic from the actor side wins, and the
Algorithm 1 search dominates all named strategies.
"""

from benchmarks.common import emit, format_table, workload
from repro.baselines.common import InfeasibleScenario
from repro.baselines.hybridflow import PLACEMENT_STRATEGIES, estimate_hybridflow
from repro.config import MODEL_SPECS, ClusterSpec
from repro.rlhf.core import AlgoType

SPECS = {
    "actor": MODEL_SPECS["llama-13b"],
    "reference": MODEL_SPECS["llama-13b"],
    "critic": MODEL_SPECS["llama-70b"],
    "reward": MODEL_SPECS["llama-70b"],
}


def run_grid():
    wl = workload()
    results = {}
    for n_machines in (8, 12, 16):
        cluster = ClusterSpec(n_machines=n_machines)
        point = {}
        for strategy in PLACEMENT_STRATEGIES:
            try:
                est = estimate_hybridflow(
                    AlgoType.PPO, SPECS, cluster, wl, placement=strategy
                )
                point[strategy] = est.throughput(wl)
                if strategy == "hybridflow":
                    point["chosen"] = est.placement
            except (InfeasibleScenario, RuntimeError):
                point[strategy] = None
        results[cluster.n_gpus] = point
    return results


def test_fig13_larger_critic_and_reward(benchmark):
    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = [
        [gpus] + [point[s] for s in PLACEMENT_STRATEGIES]
        for gpus, point in sorted(results.items())
    ]
    text = format_table(
        ["gpus", *PLACEMENT_STRATEGIES],
        rows,
        "Figure 13: 13B actor/ref + 70B critic/reward placements (tokens/sec)",
    )
    text += "\n\nAlgorithm 1 placements:\n" + "\n".join(
        f"  {gpus} GPUs: {point.get('chosen', 'n/a')}"
        for gpus, point in sorted(results.items())
    )
    emit("fig13_large_critic", text)

    for gpus, point in results.items():
        named = {
            s: v for s, v in point.items()
            if s in PLACEMENT_STRATEGIES[:-1] and v is not None
        }
        if named and point["hybridflow"] is not None:
            assert point["hybridflow"] >= max(named.values()) * 0.999, gpus

    # separating actor and critic pays off at the largest scale (§8.3:
    # "distributing actor and critic on different devices ... leads to
    # higher throughput in large clusters")
    big = results[128]
    assert big["split"] is not None
    assert big["hybridflow"] >= big["split"]
