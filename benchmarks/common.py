"""Shared infrastructure for the figure/table reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's evaluation
(§8).  Results are printed as aligned text tables and also written under
``benchmarks/results/`` so they can be inspected after a run.

Absolute numbers come from the analytical simulators and will not match the
paper's A100 testbed; the *shapes* — who wins, by roughly what factor, where
crossovers fall — are asserted in the accompanying checks and recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Sequence

from repro.baselines import ALL_SYSTEMS
from repro.baselines.common import InfeasibleScenario
from repro.config import MODEL_SPECS, ClusterSpec, RlhfWorkload
from repro.rlhf.core import AlgoType

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The end-to-end evaluation grid (model, number of machines) mirroring the
#: paper's scale sweep: "from the smallest number of GPUs to run RLHF
#: without OOM to 128 GPUs" (§8.2).
END_TO_END_GRID = [
    ("llama-7b", 1),
    ("llama-7b", 2),
    ("llama-7b", 8),
    ("llama-7b", 16),
    ("llama-13b", 2),
    ("llama-13b", 8),
    ("llama-13b", 16),
    ("llama-34b", 4),
    ("llama-34b", 16),
    ("llama-70b", 8),
    ("llama-70b", 16),
]

PPO_MODELS = ("actor", "critic", "reference", "reward")
SAFE_MODELS = ("actor", "critic", "reference", "reward", "cost")
REMAX_MODELS = ("actor", "reference", "reward")

MODELS_BY_ALGO = {
    AlgoType.PPO: PPO_MODELS,
    AlgoType.REMAX: REMAX_MODELS,
    AlgoType.SAFE_RLHF: SAFE_MODELS,
    AlgoType.GRPO: REMAX_MODELS,
}


def workload() -> RlhfWorkload:
    """The §8.1 workload: 1024/1024 tokens, global batch 1024, 8 updates."""
    return RlhfWorkload()


def specs_for(algo: AlgoType, model_name: str) -> Dict[str, object]:
    return {m: MODEL_SPECS[model_name] for m in MODELS_BY_ALGO[algo]}


def run_end_to_end_grid(algo: AlgoType) -> List[Dict[str, object]]:
    """Throughput of every system at every grid point; 'OOM' when infeasible."""
    wl = workload()
    rows = []
    for model_name, n_machines in END_TO_END_GRID:
        cluster = ClusterSpec(n_machines=n_machines)
        row: Dict[str, object] = {
            "model": model_name,
            "gpus": cluster.n_gpus,
        }
        for system, estimate_fn in ALL_SYSTEMS.items():
            try:
                est = estimate_fn(algo, specs_for(algo, model_name), cluster, wl)
                row[system] = est.throughput(wl)
            except InfeasibleScenario:
                row[system] = None
        rows.append(row)
    return rows


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    def fmt(value: object) -> str:
        if value is None:
            return "OOM"
        if isinstance(value, float):
            if value < 10:
                return f"{value:.3f}"
            return f"{value:,.1f}" if value < 100 else f"{value:,.0f}"
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in text_rows)) if text_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    print("\n" + text + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def throughput_table(
    rows: List[Dict[str, object]], title: str
) -> str:
    headers = ["model", "gpus"] + list(ALL_SYSTEMS) + ["best speedup"]
    table_rows = []
    for row in rows:
        hf = row.get("HybridFlow")
        others = [
            row[s] for s in ALL_SYSTEMS if s != "HybridFlow" and row[s]
        ]
        speedup = (
            f"{hf / max(others):.2f}x" if hf and others else "-"
        )
        table_rows.append(
            [row["model"], row["gpus"]]
            + [row[s] for s in ALL_SYSTEMS]
            + [speedup]
        )
    return format_table(headers, table_rows, title)
