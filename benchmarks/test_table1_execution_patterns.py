"""Table 1: qualitative comparison of the RLHF frameworks.

Regenerates the comparison matrix from the system models' own metadata and
verifies the execution-pattern semantics: DeepSpeed-Chat serialises all six
steps on one pool; OpenRLHF/NeMo-Aligner overlap across pools in the
preparation and learning stages; HybridFlow supports every placement.
"""

from benchmarks.common import emit, format_table, specs_for, workload
from repro.baselines import (
    estimate_deepspeed_chat,
    estimate_hybridflow,
    estimate_nemo_aligner,
    estimate_openrlhf,
)
from repro.baselines.hybridflow import PLACEMENT_STRATEGIES
from repro.config import ClusterSpec
from repro.perf.iteration import ModelExecution, estimate_iteration, GenerationPlan
from repro.rlhf.core import AlgoType

MATRIX = [
    [
        "Parallelism",
        "ZeRO (train) / TP (gen)",
        "ZeRO (train) / TP (gen)",
        "3D for both stages",
        "3D, ZeRO, FSDP (train) / 3D (gen)",
    ],
    [
        "Actor weights",
        "reshard ZeRO->TP",
        "two copies + sync",
        "shared partition",
        "zero-redundancy reshard",
    ],
    [
        "Placement",
        "colocate all",
        "standalone per model",
        "actor/ref + critic/RM split",
        "any placement (Algorithm 1)",
    ],
    [
        "Execution",
        "fully sequential",
        "concurrent across pools",
        "concurrent across 2 pools",
        "any pattern",
    ],
]


def run_estimates():
    wl = workload()
    cluster = ClusterSpec(n_machines=2)
    specs = specs_for(AlgoType.PPO, "llama-7b")
    return {
        "DeepSpeed-Chat": estimate_deepspeed_chat(AlgoType.PPO, specs, cluster, wl),
        "OpenRLHF": estimate_openrlhf(AlgoType.PPO, specs, cluster, wl),
        "NeMo-Aligner": estimate_nemo_aligner(AlgoType.PPO, specs, cluster, wl),
        "HybridFlow": estimate_hybridflow(AlgoType.PPO, specs, cluster, wl),
    }


def test_table1_framework_comparison(benchmark):
    estimates = benchmark.pedantic(run_estimates, rounds=1, iterations=1)
    emit(
        "table1_comparison",
        format_table(
            ["", "DeepSpeed-Chat", "OpenRLHF", "NeMo-Aligner", "HybridFlow"],
            MATRIX,
            "Table 1: comparison of RLHF frameworks",
        )
        + "\n\nPlacements chosen on 16 GPUs (7B PPO):\n"
        + "\n".join(
            f"  {name}: {est.placement}" for name, est in estimates.items()
        ),
    )

    assert "colocate" in estimates["DeepSpeed-Chat"].placement
    assert "standalone" in estimates["OpenRLHF"].placement
    assert "split" in estimates["NeMo-Aligner"].placement
    assert len(PLACEMENT_STRATEGIES) == 4


def test_table1_colocation_serialises_and_split_overlaps(benchmark):
    """The execution-pattern drawings of Table 1 as a d_cost property."""
    from repro.config import MODEL_SPECS, ParallelConfig

    wl = workload()
    cluster = ClusterSpec(n_machines=2)
    spec = MODEL_SPECS["llama-7b"]
    parallel = ParallelConfig(1, 8, 2)
    gen_plan = GenerationPlan(tp=2, pp=1, n_replicas=8, pool="p0")

    def one_pool():
        executions = {
            m: ModelExecution(spec=spec, pool="p0", parallel=parallel)
            for m in ("actor", "critic", "reference", "reward")
        }
        return estimate_iteration(AlgoType.PPO, executions, gen_plan, wl, cluster)

    colocated = benchmark.pedantic(one_pool, rounds=1, iterations=1)
    executions = {
        m: ModelExecution(spec=spec, pool=f"p{i}", parallel=parallel)
        for i, m in enumerate(("actor", "critic", "reference", "reward"))
    }
    separate = estimate_iteration(AlgoType.PPO, executions, gen_plan, wl, cluster)

    # same per-model work, but disjoint pools overlap within each stage
    assert separate.preparation < colocated.preparation
    assert separate.training < colocated.training
