"""Figure 16: runtime of the device-mapping algorithm (§8.5).

Model size and cluster size are scaled together, as in the paper.  Shapes:
the search completes quickly (the paper caps at ~half an hour on its grid;
this reproduction's grid finishes in seconds), grows with scale, and the
parallelism-strategy cache makes a warm re-run much cheaper.
"""

import time

from benchmarks.common import emit, format_table, workload
from repro.config import MODEL_SPECS, ClusterSpec
from repro.mapping import map_dataflow
from repro.mapping.auto_parallel import clear_cache
from repro.rlhf.core import AlgoType

GRID = [
    ("llama-7b", 1),
    ("llama-7b", 2),
    ("llama-13b", 4),
    ("llama-34b", 8),
    ("llama-70b", 16),
]


def run_mapping_grid():
    wl = workload()
    rows = []
    clear_cache()
    for model, n_machines in GRID:
        specs = {m: MODEL_SPECS[model] for m in ("actor", "critic", "reference", "reward")}
        cluster = ClusterSpec(n_machines=n_machines)
        start = time.perf_counter()
        result = map_dataflow(AlgoType.PPO, specs, cluster, wl)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        map_dataflow(AlgoType.PPO, specs, cluster, wl)
        warm = time.perf_counter() - start
        rows.append(
            {
                "model": model,
                "gpus": cluster.n_gpus,
                "cold_s": cold,
                "warm_s": warm,
                "placement": result.describe(),
            }
        )
    return rows


def test_fig16_mapping_runtime(benchmark):
    rows = benchmark.pedantic(run_mapping_grid, rounds=1, iterations=1)
    emit(
        "fig16_mapping_runtime",
        format_table(
            ["model", "gpus", "cold (s)", "warm (s)", "chosen mapping"],
            [
                [r["model"], r["gpus"], r["cold_s"], r["warm_s"], r["placement"]]
                for r in rows
            ],
            "Figure 16: device-mapping algorithm runtime",
        ),
    )

    # runtime grows as model and cluster scale together
    assert rows[-1]["cold_s"] > rows[0]["cold_s"]
    # the strategy cache pays off on a warm re-run (§6's caching optimisation)
    for r in rows[2:]:
        assert r["warm_s"] <= r["cold_s"]
    # and the whole search is far below the paper's half-hour budget
    assert sum(r["cold_s"] for r in rows) < 600
