"""Table 2: transition comm volume / peak memory / redundancy per engine.

Checks the closed-form algebra *and* validates it against bytes actually
observed when the functional 3D-HybridEngine moves real weight shards on the
miniature model.
"""

from fractions import Fraction

from benchmarks.common import emit, format_table
from repro.config import ClusterSpec, GenParallelConfig, ParallelConfig
from repro.hybrid_engine import EngineKind, HybridEngine3D, transition_overhead
from repro.models.tinylm import TinyLM, TinyLMConfig
from repro.parallel.topology import GenGroupingMode
from repro.single_controller import SingleController, WorkerGroup
from repro.workers import ActorWorker

TRAIN = ParallelConfig(pp=1, tp=8, dp=2)
GEN = GenParallelConfig.derive(TRAIN, 1, 2)

LM_CFG = TinyLMConfig(
    n_layers=4,
    hidden_size=64,
    n_heads=4,
    ffn_hidden_size=96,
    vocab_size=32,
    max_seq_len=32,
)


def algebra_rows():
    rows = []
    for kind in EngineKind:
        o = transition_overhead(kind, TRAIN, GEN)
        rows.append(
            [
                kind.value,
                f"{o.comm_fraction} M",
                f"{o.peak_memory_fraction} M",
                f"{o.redundancy_fraction} M",
            ]
        )
    return rows


def observed_functional(mode: GenGroupingMode):
    controller = SingleController(ClusterSpec(n_machines=2))
    parallel = ParallelConfig(pp=1, tp=4, dp=2)
    gen = GenParallelConfig.derive(parallel, 1, 2)
    group = WorkerGroup(
        ActorWorker,
        controller.create_pool(parallel.world_size),
        parallel_config=parallel,
        gen_config=gen,
        gen_mode=mode,
        controller=controller,
        name="actor",
        worker_kwargs={"model_config": LM_CFG},
    )
    report = HybridEngine3D(group).to_generation()
    model_bytes = sum(
        arr.nbytes for arr in TinyLM(LM_CFG, seed=0).state_dict().values()
    )
    return report, model_bytes, parallel, gen


def test_table2_transition_overhead(benchmark):
    rows = benchmark.pedantic(algebra_rows, rounds=1, iterations=1)
    emit(
        "table2_overhead_algebra",
        format_table(
            ["engine", "comm volume", "peak memory", "redundancy"],
            rows,
            f"Table 2: transition overhead (training {TRAIN}, generation "
            f"{GEN}; M = actor size)",
        ),
    )

    ds = transition_overhead(EngineKind.DS_CHAT, TRAIN, GEN)
    v = transition_overhead(EngineKind.HYBRIDFLOW_V, TRAIN, GEN)
    hf = transition_overhead(EngineKind.HYBRIDFLOW, TRAIN, GEN)
    assert ds.comm_fraction == Fraction(15, 16)
    assert v.comm_fraction == Fraction(7, 8)
    assert hf.comm_fraction == Fraction(3, 8)
    assert hf.peak_memory_fraction == Fraction(1, 2)
    assert hf.redundancy_fraction == 0


def test_table2_observed_matches_formula(benchmark):
    (report, model_bytes, parallel, gen), = [
        benchmark.pedantic(
            observed_functional,
            args=(GenGroupingMode.HYBRIDFLOW,),
            rounds=1,
            iterations=1,
        )
    ]
    expected = transition_overhead(EngineKind.HYBRIDFLOW, parallel, gen)

    # zero redundancy observed with real arrays
    assert report.total_redundant_bytes == 0
    # per-rank comm stays within the formula bound (replicated norms skew
    # per-rank sizes slightly on the miniature model)
    assert 0 < report.max_comm_bytes <= expected.comm_bytes(model_bytes) * 1.6
    # peak memory is the generation shard, not the full model
    assert report.max_peak_bytes < model_bytes

    report_v, model_bytes, parallel, gen = observed_functional(
        GenGroupingMode.VANILLA
    )
    expected_v = transition_overhead(EngineKind.HYBRIDFLOW_V, parallel, gen)
    assert report_v.total_redundant_bytes > 0
    assert report_v.max_peak_bytes == model_bytes
    assert report_v.max_comm_bytes > report.max_comm_bytes

    emit(
        "table2_observed",
        "Table 2 (functional check, tiny model, train 1-4-2 -> gen 1-2):\n"
        f"  hybridflow: comm_max={report.max_comm_bytes}B "
        f"peak={report.max_peak_bytes}B redundant={report.total_redundant_bytes}B\n"
        f"  vanilla:    comm_max={report_v.max_comm_bytes}B "
        f"peak={report_v.max_peak_bytes}B redundant={report_v.total_redundant_bytes}B\n"
        f"  formula bounds: hf_comm<={expected.comm_bytes(model_bytes):.0f}B, "
        f"v_comm<={expected_v.comm_bytes(model_bytes):.0f}B, model={model_bytes}B",
    )
