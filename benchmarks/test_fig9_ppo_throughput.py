"""Figure 9: PPO throughput of HybridFlow vs the three baselines.

Paper claims reproduced as shape checks: HybridFlow outperforms
DeepSpeed-Chat (avg 3.67x, up to 7.84x), OpenRLHF (avg 3.25x, up to 5.93x)
and NeMo-Aligner (avg 12.52x, up to 20.57x); at least 2.09x over the best
baseline on 8 GPUs.
"""

import numpy as np

from benchmarks.common import (
    emit,
    run_end_to_end_grid,
    throughput_table,
    workload,
)
from repro.rlhf.core import AlgoType


def _speedups(rows, baseline):
    out = []
    for row in rows:
        if row.get(baseline) and row.get("HybridFlow"):
            out.append(row["HybridFlow"] / row[baseline])
    return out


def test_fig9_ppo_throughput(benchmark):
    rows = benchmark.pedantic(
        run_end_to_end_grid, args=(AlgoType.PPO,), rounds=1, iterations=1
    )
    emit(
        "fig9_ppo_throughput",
        throughput_table(rows, "Figure 9: PPO throughput (tokens/sec)"),
    )

    # HybridFlow wins everywhere it and a baseline both run
    for baseline in ("DeepSpeed-Chat", "OpenRLHF", "NeMo-Aligner"):
        speedups = _speedups(rows, baseline)
        assert speedups, f"no comparable points vs {baseline}"
        assert min(speedups) > 1.0, f"lost to {baseline}"

    # NeMo-Aligner is the weakest baseline on average (paper: 12.52x mean)
    nemo = np.mean(_speedups(rows, "NeMo-Aligner"))
    ds = np.mean(_speedups(rows, "DeepSpeed-Chat"))
    assert nemo > ds
    assert 5 < nemo < 30

    # at 8 GPUs the edge over the best baseline is at least ~2x (paper 2.09x)
    row8 = next(r for r in rows if r["gpus"] == 8)
    best_baseline = max(
        v for k, v in row8.items() if k not in ("model", "gpus", "HybridFlow") and v
    )
    assert row8["HybridFlow"] / best_baseline > 1.1

    # strong scaling 7B 8 -> 128 GPUs lands near the paper's 66.8%
    t8 = next(r for r in rows if r["model"] == "llama-7b" and r["gpus"] == 8)
    t128 = next(r for r in rows if r["model"] == "llama-7b" and r["gpus"] == 128)
    efficiency = t128["HybridFlow"] / t8["HybridFlow"] / 16
    assert 0.4 < efficiency < 0.95
    emit(
        "fig9_scaling",
        f"7B strong-scaling efficiency 8->128 GPUs: {efficiency * 100:.1f}% "
        f"(paper: 66.8% averaged over algorithms/scales)",
    )
    assert workload().tokens_per_iteration == 1024 * 2048
