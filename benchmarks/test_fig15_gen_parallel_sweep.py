"""Figure 15: transition + generation time vs generation TP size (§8.4).

7B and 13B actors on 16 GPUs, training groups 1-8-2, generation TP swept
over {1, 2, 4, 8} with p_g = 1 and d_g = 8/t_g.  All models colocated, KV
cache best-effort from the remaining memory (reserved bytes model the four
colocated models' persistent states).

Shapes: t_g = 8 (the training TP size, NeMo-Aligner's choice) is never the
best; 13B prefers a larger t_g than 7B; very small t_g is throttled by
per-GPU KV-cache pressure.
"""

from benchmarks.common import emit, format_table, workload
from repro.config import (
    MODEL_SPECS,
    ClusterSpec,
    GenParallelConfig,
    ParallelConfig,
)
from repro.hybrid_engine.overhead import EngineKind
from repro.perf.generation import generation_latency
from repro.perf.transition import transition_time

TRAIN = ParallelConfig(pp=1, tp=8, dp=2)
#: Persistent per-GPU bytes of the four colocated models in this experiment.
RESERVED = 17e9


def run_sweep():
    wl = workload()
    cluster = ClusterSpec(n_machines=2)
    results = {}
    for model in ("llama-7b", "llama-13b"):
        spec = MODEL_SPECS[model]
        for gen_tp in (1, 2, 4, 8):
            gen = GenParallelConfig.derive(TRAIN, 1, gen_tp)
            n_replicas = TRAIN.dp * gen.micro_dp
            est = generation_latency(
                spec,
                cluster,
                gen_tp,
                1,
                n_replicas,
                wl,
                reserved_bytes=RESERVED,
            )
            trans = transition_time(EngineKind.HYBRIDFLOW, spec, cluster, TRAIN, gen)
            results[(model, gen_tp)] = {
                "transition": trans,
                "generation": est.total,
                "total": trans + est.total,
                "waves": est.n_waves,
            }
    return results


def test_fig15_generation_parallel_sweep(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        [model, tg, r["transition"], r["generation"], r["total"], r["waves"]]
        for (model, tg), r in sorted(results.items())
    ]
    emit(
        "fig15_gen_parallel_sweep",
        format_table(
            ["model", "t_g", "transition (s)", "generation (s)", "total (s)", "waves"],
            rows,
            "Figure 15: time breakdown vs generation TP size (16 GPUs, train 1-8-2)",
        ),
    )

    def best_tg(model):
        times = {tg: results[(model, tg)]["total"] for tg in (1, 2, 4, 8)}
        return min(times, key=times.get), times

    best7, times7 = best_tg("llama-7b")
    best13, times13 = best_tg("llama-13b")

    # t_g = t = 8 is suboptimal for both models (the point of §8.4)
    assert times7[8] > times7[best7] * 1.1
    assert times13[8] > times13[best13] * 1.1
    # 7B prefers t_g <= 2, 13B prefers t_g = 4 (paper: 2 and 4)
    assert best7 <= 2
    assert best13 == 4
    # "Further reducing t_g fails to achieve higher speedup" for 13B
    assert times13[1] > times13[best13]
    # transition cost shrinks as t_g approaches the training TP size
    for model in ("llama-7b", "llama-13b"):
        assert results[(model, 8)]["transition"] <= results[(model, 1)]["transition"]
