"""Figure 10: ReMax throughput (no critic, extra greedy generation pass).

NeMo-Aligner does not support ReMax (§8.1), so its column is absent; the
remaining ordering (HybridFlow first) must hold, and ReMax iterations are
generation-heavier than PPO's.
"""

from benchmarks.common import (
    emit,
    run_end_to_end_grid,
    specs_for,
    throughput_table,
    workload,
)
from repro.baselines import estimate_hybridflow
from repro.config import ClusterSpec
from repro.rlhf.core import AlgoType


def test_fig10_remax_throughput(benchmark):
    rows = benchmark.pedantic(
        run_end_to_end_grid, args=(AlgoType.REMAX,), rounds=1, iterations=1
    )
    emit(
        "fig10_remax_throughput",
        throughput_table(rows, "Figure 10: ReMax throughput (tokens/sec)"),
    )

    # NeMo-Aligner cannot run ReMax anywhere
    assert all(row["NeMo-Aligner"] is None for row in rows)

    # HybridFlow still beats every runnable baseline
    for row in rows:
        hf = row["HybridFlow"]
        for system in ("DeepSpeed-Chat", "OpenRLHF"):
            if row[system]:
                assert hf > row[system], (row["model"], row["gpus"], system)

    # ReMax spends more of its iteration on generation than PPO (two passes)
    cluster = ClusterSpec(n_machines=2)
    wl = workload()
    ppo = estimate_hybridflow(
        AlgoType.PPO, specs_for(AlgoType.PPO, "llama-7b"), cluster, wl
    )
    remax = estimate_hybridflow(
        AlgoType.REMAX, specs_for(AlgoType.REMAX, "llama-7b"), cluster, wl
    )
    ppo_share = ppo.breakdown.generation / ppo.breakdown.total
    remax_share = remax.breakdown.generation / remax.breakdown.total
    assert remax_share > ppo_share
