"""Ablation: the continuous-batching control of §8.1.

The paper enforces equal response lengths "as the baseline systems may not
incorporate continuous-batching optimization during generation, for a fair
comparison".  This ablation quantifies what that control neutralised: with
skewed real-world response lengths, a continuous-batching engine (vLLM/Orca
style) beats wave-static scheduling by a large factor, and the two coincide
exactly when lengths are pinned equal.
"""

import numpy as np

from benchmarks.common import emit, format_table
from repro.config import MODEL_SPECS, ClusterSpec
from repro.perf.continuous_batching import (
    sample_response_lengths,
    serve_continuous,
    serve_static,
)

SPEC = MODEL_SPECS["llama-7b"]
CLUSTER = ClusterSpec(n_machines=1)
CAPACITY = 32
N_REQUESTS = 128


def run_ablation():
    rng = np.random.default_rng(0)
    rows = []
    workloads = {
        "equal lengths (the paper's control)": np.full(N_REQUESTS, 128),
        "geometric, mean 64 / max 512": sample_response_lengths(
            N_REQUESTS, 64, 512, rng
        ),
        "geometric, mean 128 / max 1024": sample_response_lengths(
            N_REQUESTS, 128, 1024, rng
        ),
    }
    for name, lengths in workloads.items():
        static = serve_static(lengths, CAPACITY, SPEC, CLUSTER)
        continuous = serve_continuous(lengths, CAPACITY, SPEC, CLUSTER)
        rows.append(
            [
                name,
                static.total_time,
                continuous.total_time,
                f"{static.total_time / continuous.total_time:.2f}x",
                f"{continuous.slot_utilisation * 100:.0f}%",
            ]
        )
    return rows


def test_ablation_continuous_batching(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit(
        "ablation_continuous_batching",
        format_table(
            [
                "response lengths",
                "static (s)",
                "continuous (s)",
                "speedup",
                "cont. utilisation",
            ],
            rows,
            f"Continuous batching ablation ({SPEC.name}, capacity {CAPACITY})",
        ),
    )
    equal_speedup = float(rows[0][3].rstrip("x"))
    skewed_speedups = [float(r[3].rstrip("x")) for r in rows[1:]]
    assert abs(equal_speedup - 1.0) < 0.05  # control removes the effect
    assert all(s > 1.3 for s in skewed_speedups)
