"""Ablation: the continuous-batching control of §8.1.

The paper enforces equal response lengths "as the baseline systems may not
incorporate continuous-batching optimization during generation, for a fair
comparison".  This ablation quantifies what that control neutralised: with
skewed real-world response lengths, a continuous-batching engine (vLLM/Orca
style) beats wave-static scheduling by a large factor, and the two coincide
exactly when lengths are pinned equal.
"""

import numpy as np

from benchmarks.common import emit, format_table
from repro.config import MODEL_SPECS, ClusterSpec
from repro.models.tinylm import TinyLM, TinyLMConfig
from repro.perf.continuous_batching import (
    continuous_schedule_stats,
    sample_response_lengths,
    serve_continuous,
    serve_static,
)
from repro.serving import RolloutServer, ServingConfig

SPEC = MODEL_SPECS["llama-7b"]
CLUSTER = ClusterSpec(n_machines=1)
CAPACITY = 32
N_REQUESTS = 128


def run_ablation():
    rng = np.random.default_rng(0)
    rows = []
    workloads = {
        "equal lengths (the paper's control)": np.full(N_REQUESTS, 128),
        "geometric, mean 64 / max 512": sample_response_lengths(
            N_REQUESTS, 64, 512, rng
        ),
        "geometric, mean 128 / max 1024": sample_response_lengths(
            N_REQUESTS, 128, 1024, rng
        ),
    }
    for name, lengths in workloads.items():
        static = serve_static(lengths, CAPACITY, SPEC, CLUSTER)
        continuous = serve_continuous(lengths, CAPACITY, SPEC, CLUSTER)
        rows.append(
            [
                name,
                static.total_time,
                continuous.total_time,
                f"{static.total_time / continuous.total_time:.2f}x",
                f"{continuous.slot_utilisation * 100:.0f}%",
            ]
        )
    return rows


def test_ablation_continuous_batching(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit(
        "ablation_continuous_batching",
        format_table(
            [
                "response lengths",
                "static (s)",
                "continuous (s)",
                "speedup",
                "cont. utilisation",
            ],
            rows,
            f"Continuous batching ablation ({SPEC.name}, capacity {CAPACITY})",
        ),
    )
    equal_speedup = float(rows[0][3].rstrip("x"))
    skewed_speedups = [float(r[3].rstrip("x")) for r in rows[1:]]
    assert abs(equal_speedup - 1.0) < 0.05  # control removes the effect
    assert all(s > 1.3 for s in skewed_speedups)


def run_functional_cross_validation():
    """Run the *functional* engine (real TinyLM decode over paged KV) on
    matched workloads and compare its measured slot utilisation with the
    analytic schedule the table above is built from."""
    cfg = TinyLMConfig(
        n_layers=2,
        hidden_size=16,
        n_heads=2,
        ffn_hidden_size=24,
        vocab_size=13,
        max_seq_len=36,
    )
    model = TinyLM(cfg, seed=4)
    rng = np.random.default_rng(0)
    capacity = 4
    rows = []
    workloads = {
        "equal lengths": np.full(16, 8),
        "geometric, mean 8 / max 32": sample_response_lengths(16, 8, 32, rng),
    }
    for name, lengths in workloads.items():
        server = RolloutServer(
            model, ServingConfig(max_slots=capacity, block_size=4, greedy=True)
        )
        for length in lengths:
            server.submit(
                rng.integers(0, cfg.vocab_size, size=4),
                max_new_tokens=int(length),
            )
        report = server.drain()
        n_steps, util = continuous_schedule_stats(lengths, capacity)
        rows.append(
            [
                name,
                f"{report.n_steps} / {n_steps}",
                f"{report.slot_utilisation * 100:.1f}%",
                f"{util * 100:.1f}%",
                f"{abs(report.slot_utilisation - util) / util * 100:.2f}%",
            ]
        )
    return rows


def test_functional_engine_matches_analytic_model(benchmark):
    rows = benchmark.pedantic(
        run_functional_cross_validation, rounds=1, iterations=1
    )
    emit(
        "continuous_batching_functional_cross_validation",
        format_table(
            [
                "workload",
                "steps (engine / model)",
                "engine utilisation",
                "analytic utilisation",
                "error",
            ],
            rows,
            "Functional serving engine vs analytic Orca schedule",
        ),
    )
    for row in rows:
        engine, analytic = row[1].split(" / ")
        assert int(engine) == int(analytic)
        assert float(row[4].rstrip("%")) < 5.0  # the issue's 5% criterion
