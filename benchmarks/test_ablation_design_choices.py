"""Ablations of HybridFlow's individual design choices.

Everything else held fixed, each ablation removes one mechanism:

* **generation grouping** — interval grouping (HybridFlow) vs vanilla
  grouping (HybridFlow-V) vs a DS-Chat-style cluster-wide reshard: isolates
  §5.3's contribution to the transition cost.
* **micro data parallelism** — generating with the training parallelism
  (d_g = 1) vs resharding to smaller TP with micro-DP: isolates §5.1's
  contribution to generation throughput.
* **KV cache** — efficient vs inefficient generation engine: isolates the
  serving-engine integration (§7's vLLM adaptation).
"""

from benchmarks.common import emit, format_table, workload
from repro.config import (
    MODEL_SPECS,
    ClusterSpec,
    GenParallelConfig,
    ParallelConfig,
)
from repro.hybrid_engine.overhead import EngineKind
from repro.perf.generation import generation_latency
from repro.perf.transition import transition_time

SPEC = MODEL_SPECS["llama-13b"]
CLUSTER = ClusterSpec(n_machines=2)
TRAIN = ParallelConfig(pp=1, tp=8, dp=2)
GEN_TP = 4
RESERVED = 17e9


def run_ablations():
    wl = workload()
    gen_cfg = GenParallelConfig.derive(TRAIN, 1, GEN_TP)

    # 1. grouping method: transition cost only
    grouping = {
        "hybridflow (interval)": transition_time(
            EngineKind.HYBRIDFLOW, SPEC, CLUSTER, TRAIN, gen_cfg
        ),
        "vanilla (HybridFlow-V)": transition_time(
            EngineKind.HYBRIDFLOW_V, SPEC, CLUSTER, TRAIN, gen_cfg
        ),
        "cluster-wide (DS-Chat)": transition_time(
            EngineKind.DS_CHAT,
            SPEC,
            CLUSTER,
            ParallelConfig(1, 1, TRAIN.world_size),
            GenParallelConfig(1, 1, 1),
        ),
    }

    # 2. micro-DP: generation latency with resharding vs training layout
    with_micro_dp = generation_latency(
        SPEC, CLUSTER, GEN_TP, 1,
        n_replicas=TRAIN.dp * gen_cfg.micro_dp,
        workload=wl, reserved_bytes=RESERVED,
    ).total
    without_micro_dp = generation_latency(
        SPEC, CLUSTER, TRAIN.tp, TRAIN.pp,
        n_replicas=TRAIN.dp,
        workload=wl, reserved_bytes=RESERVED,
    ).total

    # 3. KV cache: efficient vs recompute-style engine, same layout
    with_kv = with_micro_dp
    without_kv = generation_latency(
        SPEC, CLUSTER, GEN_TP, 1,
        n_replicas=TRAIN.dp * gen_cfg.micro_dp,
        workload=wl, reserved_bytes=RESERVED, use_kv_cache=False,
    ).total

    return {
        "grouping": grouping,
        "micro_dp": (with_micro_dp, without_micro_dp),
        "kv_cache": (with_kv, without_kv),
    }


def test_ablation_design_choices(benchmark):
    results = benchmark.pedantic(run_ablations, rounds=1, iterations=1)

    grouping = results["grouping"]
    with_mdp, without_mdp = results["micro_dp"]
    with_kv, without_kv = results["kv_cache"]

    rows = [
        ["transition: " + name, seconds, ""]
        for name, seconds in grouping.items()
    ]
    rows += [
        ["generation: micro-DP reshard", with_mdp, ""],
        [
            "generation: training layout (d_g=1)",
            without_mdp,
            f"{without_mdp / with_mdp:.2f}x slower",
        ],
        ["generation: efficient engine", with_kv, ""],
        [
            "generation: no KV cache",
            without_kv,
            f"{without_kv / with_kv:.2f}x slower",
        ],
    ]
    emit(
        "ablation_design_choices",
        format_table(
            ["configuration", "seconds", "vs HybridFlow"],
            rows,
            f"Ablations ({SPEC.name}, 16 GPUs, train {TRAIN}, gen tp={GEN_TP})",
        ),
    )

    # interval grouping strictly dominates the alternatives
    hf = grouping["hybridflow (interval)"]
    assert hf < grouping["vanilla (HybridFlow-V)"] < grouping["cluster-wide (DS-Chat)"]
    # micro-DP resharding speeds up generation despite its transition cost
    assert with_mdp + hf < without_mdp
    # KV cache is a large multiple
    assert without_kv > 2 * with_kv
